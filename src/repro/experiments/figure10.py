"""Figure 10 — Pareto-optimal configurations vs. Paraprox.

For Gaussian, Inversion and Median the paper plots every configuration in
the (speedup, error) plane: the accurate kernel, the Paraprox output
approximation schemes (Center/Rows/Cols at aggressiveness 1 and 2) and the
proposed Stencil1/Rows1 input-perforation schemes, and connects the
Pareto-optimal points.  Key paper numbers: Gaussian Stencil1 reaches 0.45%
error at 2.1x and Rows1 2.9% at 2.2x, while Paraprox Rows1 needs 7.5%
error for 2.08x; Cols becomes slower than accurate for Inversion.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..api.engine import PerforationEngine
from ..baselines.paraprox import PARAPROX_SCHEMES, evaluate_all_schemes
from ..core.config import ROWS1_NN, STENCIL1_NN
from ..core.pareto import pareto_front
from ..data import single_image
from ..data.images import ImageClass
from .common import (
    ExperimentSettings,
    PARAMETRIZATION_APPS,
    format_table,
    make_engine,
    percent,
    times,
)


@dataclass(frozen=True)
class ParetoPoint:
    """One point of the Figure 10 scatter plot."""

    label: str
    family: str  # "ours", "paraprox" or "accurate"
    speedup: float
    error: float
    pareto_optimal: bool = False


@dataclass(frozen=True)
class Figure10Result:
    """Per-application point sets with the Pareto front marked."""

    points: dict[str, list[ParetoPoint]]
    settings: ExperimentSettings


def _collect_points(session, image) -> list[ParetoPoint]:
    app = session.app
    points: list[ParetoPoint] = [
        ParetoPoint(label="Accurate", family="accurate", speedup=1.0, error=0.0)
    ]
    our_configs = [ROWS1_NN] if app.halo == 0 else [STENCIL1_NN, ROWS1_NN]
    for result in session.evaluate_many(image, our_configs):
        points.append(
            ParetoPoint(
                label=result.config.label,
                family="ours",
                speedup=result.speedup,
                error=result.error,
            )
        )
    for result in evaluate_all_schemes(
        app, image, device=session.engine.device, schemes=PARAPROX_SCHEMES
    ):
        points.append(
            ParetoPoint(
                label=result.label,
                family="paraprox",
                speedup=result.speedup,
                error=result.error,
            )
        )
    front = pareto_front(points)
    front_labels = {p.label for p in front}
    return [
        ParetoPoint(
            label=p.label,
            family=p.family,
            speedup=p.speedup,
            error=p.error,
            pareto_optimal=p.label in front_labels,
        )
        for p in points
    ]


def run(
    quick: bool = False,
    image_size: int | None = None,
    apps: tuple[str, ...] = PARAMETRIZATION_APPS,
    engine: PerforationEngine | None = None,
) -> Figure10Result:
    """Run the Figure 10 experiment."""
    settings = ExperimentSettings.for_mode(quick=quick, image_size=image_size)
    engine = engine or make_engine()
    image = single_image(ImageClass.NATURAL, size=settings.image_size, seed=42)
    points = {
        name: _collect_points(engine.session(app=name), image) for name in apps
    }
    return Figure10Result(points=points, settings=settings)


def ours_dominates_paraprox(result: Figure10Result, app_name: str) -> bool:
    """Whether one of our configurations dominates every Paraprox point.

    This is the claim the figure supports: the proposed schemes improve the
    error significantly at similar (or better) speedup.
    """
    points = result.points[app_name]
    ours = [p for p in points if p.family == "ours"]
    paraprox = [p for p in points if p.family == "paraprox"]
    if not ours or not paraprox:
        return False
    return all(
        any(o.speedup >= p.speedup and o.error <= p.error for o in ours) for p in paraprox
    )


def render(result: Figure10Result) -> str:
    blocks = []
    for name, points in result.points.items():
        headers = ["Configuration", "Family", "Speedup", "Error", "Pareto-optimal"]
        rows = [
            [p.label, p.family, times(p.speedup), percent(p.error), "yes" if p.pareto_optimal else ""]
            for p in sorted(points, key=lambda p: p.speedup)
        ]
        dominance = (
            "our schemes dominate every Paraprox scheme"
            if ours_dominates_paraprox(result, name)
            else "our schemes do NOT dominate every Paraprox scheme"
        )
        blocks.append(f"[{name}] {dominance}\n" + format_table(headers, rows))
    title = (
        "Figure 10: Pareto-optimal solutions of the proposed and Paraprox schemes "
        f"({result.settings.image_size}x{result.settings.image_size} natural image)\n\n"
    )
    return title + "\n\n".join(blocks)
