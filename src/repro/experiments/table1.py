"""Table 1 — the applications of the evaluation.

Regenerates the application inventory: name, domain, error metric, filter
size, and (as an extension) the data-reuse factor that explains which
kernels benefit from local memory.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..api.engine import PerforationEngine
from ..apps import TABLE1_ORDER
from .common import format_table, make_engine


@dataclass(frozen=True)
class Table1Row:
    """One application row of Table 1."""

    application: str
    domain: str
    error_metric: str
    filter_size: str
    reuse_factor: float
    baseline_uses_local_memory: bool


@dataclass(frozen=True)
class Table1Result:
    rows: tuple[Table1Row, ...]


def run(
    work_group: tuple[int, int] = (16, 16),
    engine: PerforationEngine | None = None,
) -> Table1Result:
    """Build Table 1 (plus the reuse-factor extension column)."""
    engine = engine or make_engine()
    rows = []
    for name in TABLE1_ORDER:
        app = engine.resolve_app(name)
        reuse = app.perforator().reuse_factors(*work_group)
        main_buffer = max(reuse.values()) if reuse else 1.0
        filter_side = 2 * app.halo + 1
        rows.append(
            Table1Row(
                application=app.name.capitalize(),
                domain=app.domain,
                error_metric=app.error_metric.value.capitalize(),
                filter_size=f"{filter_side}x{filter_side}",
                reuse_factor=round(main_buffer, 2),
                baseline_uses_local_memory=app.baseline_uses_local_memory,
            )
        )
    return Table1Result(rows=tuple(rows))


def render(result: Table1Result) -> str:
    """Format the table as text (paper columns first, extensions last)."""
    headers = ["Application", "Domain", "Error Metric", "Filter", "Reuse", "Optimised baseline"]
    rows = [
        [
            row.application,
            row.domain,
            row.error_metric,
            row.filter_size,
            f"{row.reuse_factor:.2f}",
            "local+private" if row.baseline_uses_local_memory else "global reads",
        ]
        for row in result.rows
    ]
    return "Table 1: applications used in the evaluation\n" + format_table(headers, rows)
