"""Figure 6 — input-data sensitivity and per-application speedup.

The paper runs each application on 100 images (Hotspot: the 8 Rodinia
inputs) with its Pareto-optimal configuration and shows (top) the error
distribution per application and (bottom) the speedup over the accurate
baseline.  Paper values: Gaussian 2.2x, Inversion 1.59x, Median 1.62x,
Hotspot 1.98x, Sobel3 1.79x, Sobel5 3.05x; median errors mostly below 5%
with outliers up to ~20% (Sobel5 higher).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..api.engine import PerforationEngine
from ..core.pipeline import DatasetResult
from ..data import hotspot_suite, image_arrays
from .common import (
    ExperimentSettings,
    FIGURE6_CONFIGS,
    format_table,
    make_engine,
    percent,
    times,
)

#: Speedups reported in the paper (for the EXPERIMENTS.md comparison).
PAPER_SPEEDUPS = {
    "gaussian": 2.2,
    "inversion": 1.59,
    "median": 1.62,
    "hotspot": 1.98,
    "sobel3": 1.79,
    "sobel5": 3.05,
}

#: Applications in the order Figure 6 plots them.
FIGURE6_APPS = ("gaussian", "inversion", "median", "hotspot", "sobel3", "sobel5")


@dataclass(frozen=True)
class Figure6Result:
    """Per-application dataset results (error distribution + speedup)."""

    per_app: dict[str, DatasetResult]
    settings: ExperimentSettings


def run(
    quick: bool = False,
    image_size: int | None = None,
    image_count: int | None = None,
    apps: tuple[str, ...] = FIGURE6_APPS,
    engine: PerforationEngine | None = None,
) -> Figure6Result:
    """Run the Figure 6 experiment."""
    settings = ExperimentSettings.for_mode(quick=quick, image_size=image_size)
    count = image_count if image_count is not None else settings.image_count
    engine = engine or make_engine()

    images = image_arrays(count=count, size=settings.image_size)
    hotspot_inputs = list(hotspot_suite(max_size=settings.hotspot_max_size))

    per_app: dict[str, DatasetResult] = {}
    for name in apps:
        config = FIGURE6_CONFIGS[name]
        dataset = hotspot_inputs if name == "hotspot" else images
        per_app[name] = engine.session(app=name).evaluate_dataset(dataset, config)
    return Figure6Result(per_app=per_app, settings=settings)


def render(result: Figure6Result) -> str:
    """Text rendering: one row per application (boxplot statistics + speedup)."""
    headers = [
        "Application",
        "Config",
        "Median err",
        "Mean err",
        "P75 err",
        "Max err",
        "Speedup",
        "Paper speedup",
    ]
    rows = []
    for name, dataset_result in result.per_app.items():
        summary = dataset_result.summary
        rows.append(
            [
                name,
                dataset_result.config.label,
                percent(summary.median),
                percent(summary.mean),
                percent(summary.p75),
                percent(summary.maximum),
                times(dataset_result.speedup),
                times(PAPER_SPEEDUPS.get(name, float("nan"))),
            ]
        )
    title = (
        "Figure 6: error distribution over the input dataset and speedup vs. the baseline\n"
        f"(images: {result.settings.image_count} @ {result.settings.image_size}x"
        f"{result.settings.image_size}, hotspot: Rodinia-style suite)\n"
    )
    return title + format_table(headers, rows)
