"""Figure 7 — how the error depends on the image content.

The paper illustrates the input-data sensitivity with three example inputs
to the Median application: an image with large uniform areas (error
0.12%), a countryside photograph (5.05%, about the dataset median) and a
high-frequency pattern image (19.32%).  The experiment reproduces the
three-class comparison with the synthetic image classes.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..api.engine import PerforationEngine
from ..core.config import ApproximationConfig, ROWS1_NN
from ..data import figure7_examples
from ..data.images import ImageClass
from .common import ExperimentSettings, format_table, make_engine, percent

#: Errors the paper reports for its three example images.
PAPER_ERRORS = {
    ImageClass.FLAT: 0.0012,
    ImageClass.NATURAL: 0.0505,
    ImageClass.PATTERN: 0.1932,
}


@dataclass(frozen=True)
class Figure7Result:
    """Per-class error of the Median application."""

    app_name: str
    config: ApproximationConfig
    errors: dict[ImageClass, float]
    settings: ExperimentSettings


def run(
    quick: bool = False,
    image_size: int | None = None,
    app_name: str = "median",
    config: ApproximationConfig = ROWS1_NN,
    engine: PerforationEngine | None = None,
) -> Figure7Result:
    """Run the Figure 7 experiment (Median on one image per class)."""
    settings = ExperimentSettings.for_mode(quick=quick, image_size=image_size)
    engine = engine or make_engine()
    session = engine.session(app=app_name)
    examples = figure7_examples(size=settings.image_size)
    errors = {
        image_class: session.evaluate(image, config).error
        for image_class, image in examples.items()
    }
    return Figure7Result(app_name=app_name, config=config, errors=errors, settings=settings)


def render(result: Figure7Result) -> str:
    headers = ["Image class", "Error", "Paper error", "Ordering check"]
    ordered = sorted(result.errors.items(), key=lambda item: item[1])
    ranks = {image_class: rank for rank, (image_class, _) in enumerate(ordered)}
    expected = {ImageClass.FLAT: 0, ImageClass.NATURAL: 1, ImageClass.PATTERN: 2}
    rows = []
    for image_class in (ImageClass.FLAT, ImageClass.NATURAL, ImageClass.PATTERN):
        rows.append(
            [
                image_class.value,
                percent(result.errors[image_class]),
                percent(PAPER_ERRORS[image_class]),
                "ok" if ranks[image_class] == expected[image_class] else "MISMATCH",
            ]
        )
    title = (
        f"Figure 7: input data and corresponding error "
        f"({result.app_name}, {result.config.label}, "
        f"{result.settings.image_size}x{result.settings.image_size})\n"
    )
    return title + format_table(headers, rows)
