"""Headline claim — "1.6x to 3x speedup at ~6% average error".

Sections 1 and 7 of the paper summarise the evaluation as accelerating the
six applications by 1.6x-3x while introducing an average error of 6%.
This experiment aggregates the per-application Figure 6 results into that
single headline row so the claim can be checked at a glance.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..api.engine import PerforationEngine
from .common import ExperimentSettings, format_table, percent, times
from .figure6 import FIGURE6_APPS, Figure6Result, run as run_figure6


@dataclass(frozen=True)
class HeadlineResult:
    """Aggregate over the per-application results."""

    figure6: Figure6Result
    min_speedup: float
    max_speedup: float
    mean_error: float
    settings: ExperimentSettings


def run(
    quick: bool = False,
    image_size: int | None = None,
    image_count: int | None = None,
    engine: PerforationEngine | None = None,
) -> HeadlineResult:
    """Run the headline aggregation (reuses the Figure 6 harness)."""
    figure6 = run_figure6(
        quick=quick, image_size=image_size, image_count=image_count, engine=engine
    )
    speedups = [r.speedup for r in figure6.per_app.values()]
    errors = [r.summary.mean for r in figure6.per_app.values()]
    return HeadlineResult(
        figure6=figure6,
        min_speedup=min(speedups),
        max_speedup=max(speedups),
        mean_error=sum(errors) / len(errors),
        settings=figure6.settings,
    )


def render(result: HeadlineResult) -> str:
    headers = ["Quantity", "Measured", "Paper"]
    rows = [
        ["speedup range", f"{times(result.min_speedup)} - {times(result.max_speedup)}", "1.6x - 3x"],
        ["average error", percent(result.mean_error), "~6%"],
        ["applications", str(len(result.figure6.per_app)), str(len(FIGURE6_APPS))],
    ]
    return "Headline claim (Sections 1 and 7)\n" + format_table(headers, rows)
