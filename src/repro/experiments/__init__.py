"""``repro.experiments`` — one harness per table/figure of the paper.

Modules: :mod:`table1`, :mod:`figure6`, :mod:`figure7`, :mod:`figure8`,
:mod:`figure9`, :mod:`figure10` and :mod:`headline`; :mod:`report` bundles
them, and ``python -m repro.experiments`` is the command-line entry point.
"""

from . import figure6, figure7, figure8, figure9, figure10, headline, table1
from .common import (
    ExperimentSettings,
    FIGURE6_CONFIGS,
    PAPER_IMAGE_COUNT,
    PAPER_IMAGE_SIZE,
    PARAMETRIZATION_APPS,
    format_table,
)
from .report import available_experiments, run_all, run_experiment, write_report

__all__ = [
    "ExperimentSettings",
    "FIGURE6_CONFIGS",
    "PAPER_IMAGE_COUNT",
    "PAPER_IMAGE_SIZE",
    "PARAMETRIZATION_APPS",
    "available_experiments",
    "figure6",
    "figure7",
    "figure8",
    "figure9",
    "figure10",
    "format_table",
    "headline",
    "run_all",
    "run_experiment",
    "run_experiment",
    "table1",
    "write_report",
]
