"""``serve-bench`` — serving-throughput benchmark of the ``repro.serve`` subsystem.

Generates a deterministic mixed multi-application trace
(:mod:`repro.serve.loadgen`) and serves it twice:

* **batched-vectorized** — the serving fast path: micro-batched stacked
  launches on the vectorized backend, online controller, result cache;
* **serial-interpreter** — the baseline: the same trace, one request at a
  time (``max_batch=1``) on the reference interpreter backend, no result
  cache (every request executes).

The figure of merit is the throughput ratio; the acceptance bar is >= 5x
while every completed request's *measured* error stays within its budget
(strict mode substitutes the accurate output on violation, so this holds
by construction — the report shows how often that was needed).

Run it via ``python -m repro.experiments serve-bench`` (``--quick`` for the
CI smoke configuration); the report is also written to
``benchmarks/results/serve_bench.txt``.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path

from ..api.engine import PerforationEngine
from ..serve import PerforationServer, ServeMetrics, TraceSpec, generate_trace

#: Required throughput ratio of batched-vectorized over serial-interpreter.
REQUIRED_SPEEDUP = 5.0

#: Default location of the written report.
DEFAULT_RESULTS_PATH = Path("benchmarks") / "results" / "serve_bench.txt"


def default_spec(quick: bool = False, **overrides) -> TraceSpec:
    """The benchmark's trace specification (``quick`` shrinks everything)."""
    base = dict(requests=10, size=32, inputs_per_app=2) if quick else dict(
        requests=40, size=64, inputs_per_app=3
    )
    base.update({k: v for k, v in overrides.items() if v is not None})
    return TraceSpec(**base)


@dataclass
class ServeBenchResult:
    """Everything the report renders."""

    spec: TraceSpec
    max_batch: int
    batched: ServeMetrics
    serial: ServeMetrics
    batched_within_budget: bool
    serial_within_budget: bool

    @property
    def speedup(self) -> float:
        return self.batched.throughput_rps / self.serial.throughput_rps

    @property
    def passed(self) -> bool:
        return (
            self.speedup >= REQUIRED_SPEEDUP
            and self.batched_within_budget
            and self.serial_within_budget
        )


def _calibration_inputs(spec: TraceSpec) -> dict:
    """Calibrate the controller on inputs of the serving size.

    One representative input per application, distinct from the trace's
    input pools (different seed), so calibration is honest about unseen
    requests.
    """
    from ..data import hotspot_single, single_image
    from ..data.images import ImageClass

    inputs = {}
    for app in spec.apps:
        seed = spec.seed + 5897
        if app == "hotspot":
            inputs[app] = [hotspot_single(size=spec.size, seed=seed)]
        else:
            inputs[app] = [single_image(ImageClass.NATURAL, size=spec.size, seed=seed)]
    return inputs


def _serve(
    trace,
    spec: TraceSpec,
    backend: str,
    max_batch: int,
    cache_capacity: int,
    device=None,
    workers: int | str = 1,
):
    server = PerforationServer(
        engine=PerforationEngine(device=device, workers=workers, backend=backend),
        backend=backend,
        max_batch=max_batch,
        calibration_inputs=_calibration_inputs(spec),
        cache_capacity=cache_capacity,
        monitor=True,
        strict=True,
    )
    responses = server.run_trace(trace)
    within = all(r.within_budget for r in responses)
    return server.metrics, within


def run(
    quick: bool = False,
    requests: int | None = None,
    size: int | None = None,
    seed: int | None = None,
    max_batch: int = 8,
    device=None,
    workers: int | str = 1,
) -> ServeBenchResult:
    """Serve the trace on both configurations and collect the metrics.

    ``device``/``workers`` configure the engines of both servers; the
    backends are fixed by the benchmark's design (vectorized-batched vs.
    serial-interpreter).
    """
    spec = default_spec(quick=quick, requests=requests, size=size, seed=seed)
    trace = generate_trace(spec)
    batched, batched_ok = _serve(
        trace,
        spec,
        backend="vectorized",
        max_batch=max_batch,
        cache_capacity=256,
        device=device,
        workers=workers,
    )
    # The baseline forgoes every serving optimisation: no micro-batching,
    # no result cache, reference interpreter backend.
    serial, serial_ok = _serve(
        trace,
        spec,
        backend="interpreter",
        max_batch=1,
        cache_capacity=0,
        device=device,
        workers=workers,
    )
    return ServeBenchResult(
        spec=spec,
        max_batch=max_batch,
        batched=batched,
        serial=serial,
        batched_within_budget=batched_ok,
        serial_within_budget=serial_ok,
    )


def render(result: ServeBenchResult) -> str:
    spec = result.spec
    lines = [
        "serve-bench: micro-batched vectorized serving vs one-at-a-time "
        "interpreter serving",
        f"trace: {spec.requests} requests over {len(spec.apps)} apps "
        f"({', '.join(spec.apps)}), {spec.size}x{spec.size} inputs, "
        f"{spec.arrival_rate_hz:g} req/s arrivals, seed {spec.seed}; "
        f"max batch {result.max_batch}",
        "",
        "[batched-vectorized]",
        result.batched.describe(),
        "",
        "[serial-interpreter]",
        result.serial.describe(),
        "",
        f"throughput speedup: {result.speedup:.2f}x "
        f"(required >= {REQUIRED_SPEEDUP:g}x)",
        f"all completed requests within error budget: "
        f"batched={result.batched_within_budget}, "
        f"serial={result.serial_within_budget}",
        f"result: {'PASS' if result.passed else 'FAIL'}",
    ]
    return "\n".join(lines)


def write_report(result: ServeBenchResult, path: str | Path | None = None) -> Path:
    """Write the rendered report under ``benchmarks/results/``."""
    path = Path(path) if path is not None else DEFAULT_RESULTS_PATH
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(render(result) + "\n")
    return path
