"""``serve-bench`` — serving-throughput benchmark of the ``repro.serve`` subsystem.

Generates a deterministic mixed multi-application trace
(:mod:`repro.serve.loadgen`) and serves it twice:

* **batched-vectorized** — the serving fast path: micro-batched stacked
  launches on the vectorized backend, online controller, result cache;
* **serial-interpreter** — the baseline: the same trace, one request at a
  time (``max_batch=1``) on the reference interpreter backend, no result
  cache (every request executes).

The figure of merit is the throughput ratio; the acceptance bar is >= 5x
while every completed request's *measured* error stays within its budget
(strict mode substitutes the accurate output on violation, so this holds
by construction — the report shows how often that was needed).

Run it via ``python -m repro.experiments serve-bench`` (``--quick`` for the
CI smoke configuration); the report is also written to
``benchmarks/results/serve_bench.txt``.

With ``--workers N`` (N >= 2) the benchmark switches to **fleet mode**
(:mod:`repro.fleet`): the same trace is served once by a single-process
batched server and once by an N-worker fleet, and the figure of merit is
the fleet-over-single throughput ratio — with outputs required to stay
bit-identical, zero requests shed, and zero cold-worker calibration
sweeps.  The scaling bar is machine-aware (:func:`fleet_required_speedup`):
2.5x when at least four CPUs back four workers, proportionally less on
smaller machines (a 1-CPU container cannot scale by adding processes, so
it only has to stay close to parity).  The full-size run records
``benchmarks/results/fleet_scaling.json``, which
``benchmarks/check_regression.py`` gates — the record carries its own
machine-appropriate ``required_speedup`` floor.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from pathlib import Path

from ..api.engine import PerforationEngine
from ..serve import PerforationServer, ServeMetrics, TraceSpec, generate_trace

#: Required throughput ratio of batched-vectorized over serial-interpreter.
REQUIRED_SPEEDUP = 5.0

#: Default location of the written report.
DEFAULT_RESULTS_PATH = Path("benchmarks") / "results" / "serve_bench.txt"

#: Fleet-mode report / machine-readable record locations.
FLEET_RESULTS_PATH = Path("benchmarks") / "results" / "fleet_scaling.txt"
FLEET_RECORD_PATH = Path("benchmarks") / "results" / "fleet_scaling.json"

#: Fleet mode serves all six registered applications so the planned
#: placement has enough distinct shard keys to balance four workers.
FLEET_SERVE_APPS: tuple[str, ...] = (
    "gaussian",
    "sobel3",
    "sobel5",
    "median",
    "inversion",
    "hotspot",
)


def fleet_required_speedup(workers: int, cpus: int | None = None) -> float:
    """The machine-aware fleet scaling floor.

    Process-level parallelism cannot beat the physical core count, so the
    bar scales with ``min(workers, cpus)``: the full 2.5x applies when at
    least four cores back four workers; a two-core machine must clear
    1.3x; a single-core machine cannot scale at all — oversubscribed
    workers time-slice the core and pay IPC on top — so it only has to
    stay within striking distance of parity (0.6x).
    """
    effective = min(int(workers), cpus if cpus else (os.cpu_count() or 1))
    if effective >= 4:
        return 2.5
    if effective == 3:
        return 1.8
    if effective == 2:
        return 1.3
    return 0.6


def default_spec(quick: bool = False, **overrides) -> TraceSpec:
    """The benchmark's trace specification (``quick`` shrinks everything)."""
    base = dict(requests=10, size=32, inputs_per_app=2) if quick else dict(
        requests=40, size=64, inputs_per_app=3
    )
    base.update({k: v for k, v in overrides.items() if v is not None})
    return TraceSpec(**base)


@dataclass
class ServeBenchResult:
    """Everything the report renders."""

    spec: TraceSpec
    max_batch: int
    batched: ServeMetrics
    serial: ServeMetrics
    batched_within_budget: bool
    serial_within_budget: bool

    @property
    def speedup(self) -> float:
        return self.batched.throughput_rps / self.serial.throughput_rps

    @property
    def passed(self) -> bool:
        return (
            self.speedup >= REQUIRED_SPEEDUP
            and self.batched_within_budget
            and self.serial_within_budget
        )


def _calibration_inputs(spec: TraceSpec) -> dict:
    """Calibrate the controller on inputs of the serving size.

    One representative input per application, distinct from the trace's
    input pools (different seed), so calibration is honest about unseen
    requests.
    """
    from ..data import hotspot_single, single_image
    from ..data.images import ImageClass

    inputs = {}
    for app in spec.apps:
        seed = spec.seed + 5897
        if app == "hotspot":
            inputs[app] = [hotspot_single(size=spec.size, seed=seed)]
        else:
            inputs[app] = [single_image(ImageClass.NATURAL, size=spec.size, seed=seed)]
    return inputs


def _serve(
    trace,
    spec: TraceSpec,
    backend: str,
    max_batch: int,
    cache_capacity: int,
    device=None,
    workers: int | str = 1,
):
    server = PerforationServer(
        engine=PerforationEngine(device=device, workers=workers, backend=backend),
        backend=backend,
        max_batch=max_batch,
        calibration_inputs=_calibration_inputs(spec),
        cache_capacity=cache_capacity,
        monitor=True,
        strict=True,
    )
    responses = server.run_trace(trace)
    within = all(r.within_budget for r in responses)
    return server.metrics, within


def run(
    quick: bool = False,
    requests: int | None = None,
    size: int | None = None,
    seed: int | None = None,
    max_batch: int = 8,
    device=None,
    workers: int | str = 1,
) -> ServeBenchResult:
    """Serve the trace on both configurations and collect the metrics.

    ``device``/``workers`` configure the engines of both servers; the
    backends are fixed by the benchmark's design (vectorized-batched vs.
    serial-interpreter).
    """
    spec = default_spec(quick=quick, requests=requests, size=size, seed=seed)
    trace = generate_trace(spec)
    batched, batched_ok = _serve(
        trace,
        spec,
        backend="vectorized",
        max_batch=max_batch,
        cache_capacity=256,
        device=device,
        workers=workers,
    )
    # The baseline forgoes every serving optimisation: no micro-batching,
    # no result cache, reference interpreter backend.
    serial, serial_ok = _serve(
        trace,
        spec,
        backend="interpreter",
        max_batch=1,
        cache_capacity=0,
        device=device,
        workers=workers,
    )
    return ServeBenchResult(
        spec=spec,
        max_batch=max_batch,
        batched=batched,
        serial=serial,
        batched_within_budget=batched_ok,
        serial_within_budget=serial_ok,
    )


def render(result: ServeBenchResult) -> str:
    spec = result.spec
    lines = [
        "serve-bench: micro-batched vectorized serving vs one-at-a-time "
        "interpreter serving",
        f"trace: {spec.requests} requests over {len(spec.apps)} apps "
        f"({', '.join(spec.apps)}), {spec.size}x{spec.size} inputs, "
        f"{spec.arrival_rate_hz:g} req/s arrivals, seed {spec.seed}; "
        f"max batch {result.max_batch}",
        "",
        "[batched-vectorized]",
        result.batched.describe(),
        "",
        "[serial-interpreter]",
        result.serial.describe(),
        "",
        f"throughput speedup: {result.speedup:.2f}x "
        f"(required >= {REQUIRED_SPEEDUP:g}x)",
        f"all completed requests within error budget: "
        f"batched={result.batched_within_budget}, "
        f"serial={result.serial_within_budget}",
        f"result: {'PASS' if result.passed else 'FAIL'}",
    ]
    return "\n".join(lines)


def write_report(result: ServeBenchResult, path: str | Path | None = None) -> Path:
    """Write the rendered report under ``benchmarks/results/``."""
    path = Path(path) if path is not None else DEFAULT_RESULTS_PATH
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(render(result) + "\n")
    return path


# ----------------------------------------------------------------------
# Fleet mode (--workers N >= 2)
# ----------------------------------------------------------------------
@dataclass
class FleetBenchResult:
    """Fleet-vs-single-process comparison on the same trace."""

    spec: TraceSpec
    workers: int
    cpu_count: int
    max_batch: int
    fleet: ServeMetrics
    single: ServeMetrics
    bit_identical: bool
    fleet_within_budget: bool
    single_within_budget: bool
    required_speedup: float
    warm_reports: list = field(default_factory=list)
    respawn_reports: list = field(default_factory=list)
    parent_db_stats: dict | None = None
    chaos: bool = False

    @property
    def speedup(self) -> float:
        return self.fleet.throughput_rps / self.single.throughput_rps

    @property
    def cold_evaluations(self) -> int:
        """Tuning-DB misses+puts across all workers (respawns included):
        0 means no worker — initial or recovered — ran a calibration sweep."""
        return sum(
            r["db"]["misses"] + r["db"]["puts"]
            for r in list(self.warm_reports) + list(self.respawn_reports)
        )

    @property
    def exact_accounting(self) -> bool:
        """``completed + shed + failed == len(trace)`` — no request lost."""
        total = self.fleet.completed + self.fleet.shed + self.fleet.failed
        return total == self.spec.requests

    @property
    def passed(self) -> bool:
        ok = (
            self.speedup >= self.required_speedup
            and self.bit_identical
            and self.fleet_within_budget
            and self.single_within_budget
            and self.fleet.shed == 0
            and self.cold_evaluations == 0
            and self.exact_accounting
        )
        if self.chaos:
            # The chaos smoke must actually have killed a worker, and
            # recovery must have completed every request regardless.
            ok = ok and self.fleet.worker_failures >= 1 and self.fleet.failed == 0
        return ok


def run_fleet(
    quick: bool = False,
    requests: int | None = None,
    size: int | None = None,
    seed: int | None = None,
    max_batch: int = 8,
    device=None,
    workers: int = 2,
    chaos: bool = False,
) -> FleetBenchResult:
    """Serve the trace on an N-worker fleet and on one in-process server.

    Both sides start from the same warm tuning database (the fleet's
    front-end writes it; the single server reopens it read-only), so the
    measured walls compare *serving*, not calibration.  The fleet must
    reproduce the single server's outputs bit-identically, shed nothing,
    and start every worker with zero calibration evaluations.

    ``chaos=True`` kills worker 0 (hard exit) after its first served
    request: the run then exercises detection, respawn-and-replay, and the
    exact-accounting invariant, and passes only if at least one worker
    failure was recovered with zero failed requests and outputs still
    bit-identical.  Chaos runs waive the throughput bar (recovery replays
    work, so the wall is not a scaling measurement) and never write the
    regression-gated record.
    """
    from ..autotune import Tuner, TuningDB
    from ..fleet import PerforationFleet

    spec = default_spec(
        quick=quick, requests=requests, size=size, seed=seed, apps=FLEET_SERVE_APPS
    )
    trace = generate_trace(spec)
    calibration = _calibration_inputs(spec)

    chaos_kwargs = (
        dict(fail_after={0: 1}, request_timeout_s=120.0, max_respawns=3)
        if chaos
        else {}
    )
    fleet = PerforationFleet(
        workers=workers,
        device=device,
        max_batch=max_batch,
        calibration_inputs=calibration,
        **chaos_kwargs,
    )
    try:
        fleet.start()
        fleet_responses = fleet.serve_trace(trace)
        fleet_metrics = fleet.metrics()
        warm_reports = list(fleet.warm_reports)
        respawn_reports = list(fleet.respawn_reports)
        parent_db_stats = fleet.parent_db_stats

        # Single-process reference over the same warm database; ladders are
        # restored before run_trace so its wall, like the fleet's, measures
        # serving only.
        engine = PerforationEngine(device=device, backend="vectorized")
        single = PerforationServer(
            engine=engine,
            backend="vectorized",
            max_batch=max_batch,
            calibration_inputs=calibration,
            tuner=Tuner(engine, db=TuningDB(fleet.tuning_db_path, readonly=True)),
            cache_capacity=256,
            monitor=True,
            strict=True,
        )
        for app in spec.apps:
            single.controller.ladder(app)
        single_responses = single.run_trace(trace)
        single_metrics = single.metrics
    finally:
        fleet.close()

    reference = {r.request_id: r for r in single_responses}
    bit_identical = len(fleet_responses) == len(reference) and all(
        not r.rejected
        and r.output is not None
        and r.config_label == reference[r.request_id].config_label
        and r.error == reference[r.request_id].error
        and r.output.dtype == reference[r.request_id].output.dtype
        and r.output.shape == reference[r.request_id].output.shape
        and r.output.tobytes() == reference[r.request_id].output.tobytes()
        for r in fleet_responses
    )
    return FleetBenchResult(
        spec=spec,
        workers=int(workers),
        cpu_count=os.cpu_count() or 1,
        max_batch=max_batch,
        fleet=fleet_metrics,
        single=single_metrics,
        bit_identical=bit_identical,
        fleet_within_budget=all(r.within_budget for r in fleet_responses),
        single_within_budget=all(r.within_budget for r in single_responses),
        required_speedup=0.0 if chaos else fleet_required_speedup(workers),
        warm_reports=warm_reports,
        respawn_reports=respawn_reports,
        parent_db_stats=parent_db_stats,
        chaos=chaos,
    )


def render_fleet(result: FleetBenchResult) -> str:
    spec = result.spec
    effective = min(result.workers, result.cpu_count)
    mode = " --chaos (worker 0 killed after its first request)" if result.chaos else ""
    lines = [
        f"serve-bench --workers {result.workers}{mode}: fleet serving vs one "
        "in-process batched server",
        f"trace: {spec.requests} requests over {len(spec.apps)} apps "
        f"({', '.join(spec.apps)}), {spec.size}x{spec.size} inputs, "
        f"{spec.arrival_rate_hz:g} req/s arrivals, seed {spec.seed}; "
        f"max batch {result.max_batch}",
        f"machine: {result.cpu_count} CPUs -> {effective} effective workers, "
        f"required >= {result.required_speedup:g}x",
        "",
        f"[fleet-{result.workers}x]",
        result.fleet.describe(),
        "",
        "[single-process]",
        result.single.describe(),
        "",
        f"throughput speedup: {result.speedup:.2f}x "
        f"(required >= {result.required_speedup:g}x"
        + (", waived under chaos)" if result.chaos else ")"),
        f"outputs bit-identical to single process: {result.bit_identical}",
        f"requests shed: {result.fleet.shed}",
        f"accounting exact (completed + shed + failed == trace): "
        f"{result.exact_accounting}",
        f"cold-worker calibration evaluations: {result.cold_evaluations} "
        f"(workers warm-started from the front-end's tuning database)",
    ]
    if result.chaos or result.fleet.worker_failures:
        lines.append(
            f"resilience: {result.fleet.worker_failures} worker failures, "
            f"{result.fleet.replayed} requests replayed, "
            f"{result.fleet.failed} failed, "
            f"{len(result.respawn_reports)} respawns"
        )
    lines.extend(
        [
            f"all completed requests within error budget: "
            f"fleet={result.fleet_within_budget}, single={result.single_within_budget}",
            f"result: {'PASS' if result.passed else 'FAIL'}",
        ]
    )
    return "\n".join(lines)


def fleet_record(result: FleetBenchResult) -> dict:
    """The machine-readable record ``check_regression.py`` gates.

    The record self-declares its ``required_speedup``: the regression gate
    takes the max of this and the baseline's floor, so a many-core CI
    machine is held to the full 2.5x bar even though the baseline may have
    been recorded on a smaller box.
    """
    return {
        "benchmark": "fleet_scaling",
        "app": "mixed",
        "backend": "fleet-vectorized",
        "baseline_backend": "vectorized",
        "speedup": round(result.speedup, 4),
        "required_speedup": result.required_speedup,
        "workers": result.workers,
        "cpu_count": result.cpu_count,
        "scaling_efficiency": round(
            result.speedup / min(result.workers, result.cpu_count), 4
        ),
        "requests": result.spec.requests,
        "image_size": result.spec.size,
        "bit_identical": result.bit_identical,
        "shed": result.fleet.shed,
        "cold_calibration_evals": result.cold_evaluations,
        # Strict mode substitutes the accurate output on violation, so the
        # *served* violation rate is 0 by construction; this is the
        # pre-fallback rate the controller observed.
        "violation_rate": round(
            result.fleet.violations / max(result.fleet.completed, 1), 4
        ),
        "fleet_throughput_rps": round(result.fleet.throughput_rps, 4),
        "single_throughput_rps": round(result.single.throughput_rps, 4),
    }


def write_fleet_report(
    result: FleetBenchResult,
    path: str | Path | None = None,
    record: bool = True,
) -> Path:
    """Write the fleet report; also the JSON record unless ``record=False``.

    Quick runs pass ``record=False`` so a smoke configuration never
    overwrites the full-size record the regression gate compares; chaos
    runs never write it regardless (their wall clock includes recovery
    replay, which is not a scaling measurement).
    """
    import json

    path = Path(path) if path is not None else FLEET_RESULTS_PATH
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(render_fleet(result) + "\n")
    if record and not result.chaos:
        FLEET_RECORD_PATH.parent.mkdir(parents=True, exist_ok=True)
        FLEET_RECORD_PATH.write_text(json.dumps(fleet_record(result), indent=2) + "\n")
    return path
