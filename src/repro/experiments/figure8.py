"""Figure 8 — perforation schemes with different parameters.

For Gaussian, Inversion and Median the paper plots runtime against mean
relative error for four configurations: ``Rows1:NN``, ``Rows2:NN``,
``Rows1:LI`` and ``Stencil1:NN``.  Findings the reproduction should show:

* more aggressive perforation (Rows2) has a larger error than Rows1;
* linear interpolation reduces the error of Rows1 (paper: Gaussian -45%,
  Inversion -21%, Median -34%) at essentially the same runtime;
* the stencil scheme's error is below 1%;
* Inversion cannot use the stencil scheme (1x1 filter).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..api.engine import PerforationEngine
from ..core.config import FIGURE8_CONFIGS, ApproximationConfig
from ..core.tuning import SweepResult
from ..data import single_image
from ..data.images import ImageClass
from .common import (
    ExperimentSettings,
    PARAMETRIZATION_APPS,
    format_table,
    make_engine,
    milliseconds,
    percent,
)


@dataclass(frozen=True)
class Figure8Result:
    """Per-application sweep over the four paper configurations."""

    sweeps: dict[str, SweepResult]
    li_error_reduction: dict[str, float]
    settings: ExperimentSettings


def _li_reduction(sweep: SweepResult) -> float:
    """Relative error reduction of Rows1:LI over Rows1:NN (paper: 21-45%)."""
    by_label = {point.label: point for point in sweep.points}
    nn = by_label.get("Rows1:NN")
    li = by_label.get("Rows1:LI")
    if nn is None or li is None or nn.error == 0:
        return 0.0
    return 1.0 - li.error / nn.error


def run(
    quick: bool = False,
    image_size: int | None = None,
    apps: tuple[str, ...] = PARAMETRIZATION_APPS,
    configs: tuple[ApproximationConfig, ...] = FIGURE8_CONFIGS,
    engine: PerforationEngine | None = None,
) -> Figure8Result:
    """Run the Figure 8 experiment."""
    settings = ExperimentSettings.for_mode(quick=quick, image_size=image_size)
    engine = engine or make_engine()
    image = single_image(ImageClass.NATURAL, size=settings.image_size, seed=42)

    sweeps: dict[str, SweepResult] = {}
    reductions: dict[str, float] = {}
    for name in apps:
        session = engine.session(app=name).with_inputs(image)
        applicable = [
            c for c in configs if not (c.scheme.requires_halo() and session.app.halo == 0)
        ]
        sweep = session.sweep(configs=applicable)
        sweeps[name] = sweep
        reductions[name] = _li_reduction(sweep)
    return Figure8Result(sweeps=sweeps, li_error_reduction=reductions, settings=settings)


def render(result: Figure8Result) -> str:
    headers = ["Application", "Config", "Runtime", "MRE", "Speedup"]
    rows = []
    for name, sweep in result.sweeps.items():
        for point in sweep.points:
            rows.append(
                [
                    name,
                    point.label,
                    milliseconds(point.runtime_s),
                    percent(point.error),
                    f"{point.speedup:.2f}x",
                ]
            )
    reduction_lines = [
        f"  {name}: Rows1:LI reduces the Rows1:NN error by {percent(reduction, 1)}"
        for name, reduction in result.li_error_reduction.items()
    ]
    title = (
        "Figure 8: perforation schemes with different parameters "
        f"({result.settings.image_size}x{result.settings.image_size} natural image)\n"
    )
    return (
        title
        + format_table(headers, rows)
        + "\nLinear-interpolation error reduction (paper: Gaussian -45%, Inversion -21%, Median -34%):\n"
        + "\n".join(reduction_lines)
    )
