"""Shared infrastructure for the per-figure experiment harnesses.

Every experiment module exposes

* ``run(...)`` — executes the experiment and returns a result dataclass;
* ``render(result)`` — formats the result as the text table whose rows
  correspond to the series/bars/points of the paper's figure.

``quick=True`` shrinks the workload (smaller images, fewer inputs) so the
test suite can exercise every experiment end-to-end; the benchmark harness
runs the full-size versions.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

from ..api.engine import PerforationEngine
from ..apps import get_application
from ..clsim.device import Device, firepro_w5100
from ..core.config import ApproximationConfig, ROWS1_NN, STENCIL1_NN

#: Image resolution used by the paper (1024 x 1024 grayscale).
PAPER_IMAGE_SIZE = 1024

#: Image resolution used by ``quick`` runs (tests).
QUICK_IMAGE_SIZE = 128

#: Number of images in the paper's dataset.
PAPER_IMAGE_COUNT = 100

#: Number of images used by ``quick`` runs.
QUICK_IMAGE_COUNT = 6

#: The Pareto-optimal configuration the paper selected per application for
#: Figure 6 (Section 6.2): row scheme 1 for Hotspot and Inversion, the
#: stencil scheme for the others.
FIGURE6_CONFIGS: dict[str, ApproximationConfig] = {
    "gaussian": STENCIL1_NN,
    "median": STENCIL1_NN,
    "sobel3": STENCIL1_NN,
    "sobel5": STENCIL1_NN,
    "hotspot": ROWS1_NN,
    "inversion": ROWS1_NN,
}

#: Applications shown in Figures 8-10 (the parametrisation studies).
PARAMETRIZATION_APPS = ("gaussian", "inversion", "median")


@dataclass(frozen=True)
class ExperimentSettings:
    """Workload sizing shared by the experiments."""

    image_size: int = PAPER_IMAGE_SIZE
    image_count: int = PAPER_IMAGE_COUNT
    hotspot_max_size: int | None = None
    quick: bool = False

    @classmethod
    def for_mode(cls, quick: bool = False, image_size: int | None = None) -> "ExperimentSettings":
        if quick:
            return cls(
                image_size=image_size or QUICK_IMAGE_SIZE,
                image_count=QUICK_IMAGE_COUNT,
                hotspot_max_size=128,
                quick=True,
            )
        return cls(
            image_size=image_size or PAPER_IMAGE_SIZE,
            image_count=PAPER_IMAGE_COUNT,
            hotspot_max_size=None,
            quick=False,
        )


def default_device() -> Device:
    """The simulated device all experiments run on."""
    return firepro_w5100()


def make_engine(
    device: Device | str | None = None,
    workers: int | str = "auto",
    backend: str | None = None,
) -> PerforationEngine:
    """The engine the experiment harnesses run on.

    One engine is shared across an experiment (or a whole report run): its
    reference/timing cache deduplicates work between figures, and its
    worker pool evaluates sweep configurations and dataset inputs in
    parallel.  Results are bit-for-bit identical for any worker count, and
    — for compiled-kernel runs — for any execution backend.
    """
    return PerforationEngine(
        device=device or default_device(), workers=workers, backend=backend
    )


def app_for(name: str):
    """Instantiate an application by name (thin wrapper for readability)."""
    return get_application(name)


# ---------------------------------------------------------------------------
# Text-table rendering
# ---------------------------------------------------------------------------
def format_table(headers: Sequence[str], rows: Iterable[Sequence[object]]) -> str:
    """Render an aligned text table (no external dependencies)."""
    rendered_rows = [[str(cell) for cell in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in rendered_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    def fmt(row: Sequence[str]) -> str:
        return "  ".join(cell.ljust(width) for cell, width in zip(row, widths)).rstrip()

    lines = [fmt(list(headers)), fmt(["-" * w for w in widths])]
    lines.extend(fmt(row) for row in rendered_rows)
    return "\n".join(lines)


def percent(value: float, digits: int = 2) -> str:
    """Format a fraction as a percentage string."""
    return f"{value * 100:.{digits}f}%"


def times(value: float, digits: int = 2) -> str:
    """Format a speedup factor."""
    return f"{value:.{digits}f}x"


def milliseconds(value_s: float, digits: int = 3) -> str:
    """Format a duration given in seconds as milliseconds."""
    return f"{value_s * 1e3:.{digits}f} ms"
