"""Command-line entry point: ``python -m repro.experiments <name>``.

Examples
--------
Run one experiment at paper scale::

    python -m repro.experiments figure8

Run everything quickly (small inputs, for smoke testing)::

    python -m repro.experiments all --quick

Write a full Markdown report::

    python -m repro.experiments all --output report.md
"""

from __future__ import annotations

import argparse
import sys

from .report import available_experiments, run_all, run_experiment, write_report


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments",
        description="Regenerate the tables and figures of the paper's evaluation.",
    )
    parser.add_argument(
        "experiment",
        choices=available_experiments() + ["all"],
        help="which experiment to run",
    )
    parser.add_argument(
        "--quick",
        action="store_true",
        help="use small inputs (fast smoke-test mode)",
    )
    parser.add_argument(
        "--output",
        default=None,
        help="write a Markdown report to this path instead of printing",
    )
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    if args.experiment == "all":
        if args.output:
            path = write_report(args.output, quick=args.quick)
            print(f"report written to {path}")
        else:
            print(run_all(quick=args.quick))
        return 0
    print(run_experiment(args.experiment, quick=args.quick))
    return 0


if __name__ == "__main__":
    sys.exit(main())
