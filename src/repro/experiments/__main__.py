"""Command-line entry point: ``python -m repro.experiments <name>``.

Examples
--------
Run one experiment at paper scale::

    python -m repro.experiments figure8

Run everything quickly (small inputs, for smoke testing)::

    python -m repro.experiments all --quick

Write a full Markdown report::

    python -m repro.experiments all --output report.md
"""

from __future__ import annotations

import argparse
import sys

from ..clsim.backends import available_backends
from .common import make_engine
from .report import available_experiments, run_all, run_experiment, write_report


def _workers_arg(value: str):
    if value == "auto":
        return value
    try:
        workers = int(value)
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"expected a positive integer or 'auto', got {value!r}"
        ) from None
    if workers < 1:
        raise argparse.ArgumentTypeError(f"workers must be positive, got {workers}")
    return workers


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments",
        description="Regenerate the tables and figures of the paper's evaluation.",
    )
    parser.add_argument(
        "experiment",
        choices=available_experiments() + ["all", "serve-bench", "autotune"],
        help="which experiment to run ('serve-bench' exercises the "
        "repro.serve batch-serving subsystem, 'autotune' the "
        "repro.autotune search strategies)",
    )
    parser.add_argument(
        "--quick",
        action="store_true",
        help="use small inputs (fast smoke-test mode)",
    )
    parser.add_argument(
        "--output",
        default=None,
        help="write a Markdown report to this path instead of printing",
    )
    parser.add_argument(
        "--workers",
        default="auto",
        type=_workers_arg,
        help="engine worker-pool size for parallel sweeps (positive integer or "
        "'auto'); for serve-bench, a value >= 2 instead selects fleet mode: "
        "that many repro.fleet worker processes vs one in-process server",
    )
    parser.add_argument(
        "--device",
        default=None,
        help="device profile to simulate (see repro.clsim.device.available_devices)",
    )
    parser.add_argument(
        "--backend",
        default=None,
        choices=available_backends(),
        help="execution backend for compiled-kernel runs "
        "(default: the interpreter backend)",
    )
    parser.add_argument(
        "--trace",
        default=None,
        metavar="PATH",
        help="record observability spans (repro.obs) and write a Chrome "
        "trace-event JSON (chrome://tracing / Perfetto) to PATH; in fleet "
        "mode worker spans merge into the same file",
    )
    serve = parser.add_argument_group("serve-bench options")
    serve.add_argument(
        "--requests", type=int, default=None, help="trace length (serve-bench)"
    )
    serve.add_argument(
        "--size", type=int, default=None, help="input size (serve-bench)"
    )
    serve.add_argument(
        "--seed", type=int, default=None, help="trace seed (serve-bench)"
    )
    serve.add_argument(
        "--max-batch", type=int, default=8, help="micro-batch cap (serve-bench)"
    )
    serve.add_argument(
        "--chaos",
        action="store_true",
        help="fleet mode only: kill worker 0 after its first request and "
        "require recovery to complete the trace bit-identically "
        "(serve-bench with --workers >= 2)",
    )
    autotune = parser.add_argument_group("autotune options")
    autotune.add_argument(
        "--app", default="gaussian", help="application to tune (autotune)"
    )
    autotune.add_argument(
        "--strategy",
        default="successive-halving",
        help="search strategy: grid, random, hill-climb, successive-halving "
        "(autotune)",
    )
    autotune.add_argument(
        "--evals",
        type=int,
        default=None,
        help="evaluation budget across all fidelities (autotune; default unlimited)",
    )
    autotune.add_argument(
        "--budget",
        type=float,
        default=None,
        help="error budget whose selected configuration is reported (autotune)",
    )
    autotune.add_argument(
        "--db",
        default="off",
        help="tuning database: a directory path, 'default' for the "
        "REPRO_TUNING_DB environment default, or 'off' (autotune; default off "
        "so evaluation counts are honest)",
    )
    return parser


def _run_serve_bench(args, parser: argparse.ArgumentParser) -> int:
    from .serve_bench import render, run, write_report

    if args.backend is not None:
        parser.error(
            "serve-bench compares the vectorized and interpreter backends "
            "by design; --backend does not apply"
        )
    if isinstance(args.workers, int) and args.workers >= 2:
        return _run_serve_bench_fleet(args)
    if args.chaos:
        parser.error(
            "--chaos requires fleet mode: pass --workers N with N >= 2"
        )
    result = run(
        quick=args.quick,
        requests=args.requests,
        size=args.size,
        seed=args.seed,
        max_batch=args.max_batch,
        device=args.device,
        workers=args.workers,
    )
    path = write_report(result, args.output)
    print(render(result))
    print(f"\nreport written to {path}")
    return 0 if result.passed else 1


def _run_serve_bench_fleet(args) -> int:
    from .serve_bench import render_fleet, run_fleet, write_fleet_report

    result = run_fleet(
        quick=args.quick,
        requests=args.requests,
        size=args.size,
        seed=args.seed,
        max_batch=args.max_batch,
        device=args.device,
        workers=args.workers,
        chaos=args.chaos,
    )
    # Quick runs are smoke tests and chaos walls include recovery replay:
    # neither may overwrite the full-size record the regression gate
    # compares against.
    path = write_fleet_report(result, args.output, record=not args.quick and not args.chaos)
    print(render_fleet(result))
    print(f"\nreport written to {path}")
    return 0 if result.passed else 1


def _run_autotune(args, parser: argparse.ArgumentParser) -> int:
    from .autotune_bench import render, run, write_report

    if args.backend is not None:
        parser.error(
            "autotune evaluates configurations on the NumPy fast path; "
            "--backend does not apply"
        )
    db: object = args.db
    if isinstance(db, str):
        lowered = db.strip().lower()
        if lowered in {"", "off", "0", "none", "disabled"}:
            db = False
        elif lowered == "default":
            db = None  # resolve from REPRO_TUNING_DB / the default directory
    result = run(
        quick=args.quick,
        app=args.app,
        size=args.size,
        strategy=args.strategy,
        seed=args.seed if args.seed is not None else 0,
        evals=args.evals,
        db=db,
        device=args.device,
        workers=args.workers,
    )
    if args.budget is not None:
        config = result.tuned.best_for_budget(args.budget)
        label = config.describe() if config is not None else "accurate (nothing admissible)"
        print(f"selected for budget {args.budget:.2%}: {label}\n")
    path = write_report(result, args.output)
    print(render(result))
    print(f"\nreport written to {path}")
    return 0 if result.passed else 1


def _dispatch(args, parser: argparse.ArgumentParser) -> int:
    if args.experiment == "serve-bench":
        return _run_serve_bench(args, parser)
    if args.experiment == "autotune":
        return _run_autotune(args, parser)
    engine = make_engine(device=args.device, workers=args.workers, backend=args.backend)
    if args.experiment == "all":
        if args.output:
            path = write_report(args.output, quick=args.quick, engine=engine)
            print(f"report written to {path}")
        else:
            print(run_all(quick=args.quick, engine=engine))
        return 0
    print(run_experiment(args.experiment, quick=args.quick, engine=engine))
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    tracer = None
    if args.trace:
        from ..obs.trace import install

        tracer = install(process="main")
    try:
        return _dispatch(args, parser)
    finally:
        if tracer is not None:
            from ..obs.export import write_chrome_trace

            write_chrome_trace(args.trace, tracer.spans(), dropped=tracer.dropped)
            print(f"trace written to {args.trace}")


if __name__ == "__main__":
    sys.exit(main())
