"""Command-line entry point: ``python -m repro.experiments <name>``.

Examples
--------
Run one experiment at paper scale::

    python -m repro.experiments figure8

Run everything quickly (small inputs, for smoke testing)::

    python -m repro.experiments all --quick

Write a full Markdown report::

    python -m repro.experiments all --output report.md
"""

from __future__ import annotations

import argparse
import sys

from ..clsim.backends import available_backends
from .common import make_engine
from .report import available_experiments, run_all, run_experiment, write_report


def _workers_arg(value: str):
    if value == "auto":
        return value
    try:
        workers = int(value)
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"expected a positive integer or 'auto', got {value!r}"
        ) from None
    if workers < 1:
        raise argparse.ArgumentTypeError(f"workers must be positive, got {workers}")
    return workers


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments",
        description="Regenerate the tables and figures of the paper's evaluation.",
    )
    parser.add_argument(
        "experiment",
        choices=available_experiments() + ["all"],
        help="which experiment to run",
    )
    parser.add_argument(
        "--quick",
        action="store_true",
        help="use small inputs (fast smoke-test mode)",
    )
    parser.add_argument(
        "--output",
        default=None,
        help="write a Markdown report to this path instead of printing",
    )
    parser.add_argument(
        "--workers",
        default="auto",
        type=_workers_arg,
        help="engine worker-pool size for parallel sweeps (positive integer or 'auto')",
    )
    parser.add_argument(
        "--device",
        default=None,
        help="device profile to simulate (see repro.clsim.device.available_devices)",
    )
    parser.add_argument(
        "--backend",
        default=None,
        choices=available_backends(),
        help="execution backend for compiled-kernel runs "
        "(default: the interpreter backend)",
    )
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    engine = make_engine(device=args.device, workers=args.workers, backend=args.backend)
    if args.experiment == "all":
        if args.output:
            path = write_report(args.output, quick=args.quick, engine=engine)
            print(f"report written to {path}")
        else:
            print(run_all(quick=args.quick, engine=engine))
        return 0
    print(run_experiment(args.experiment, quick=args.quick, engine=engine))
    return 0


if __name__ == "__main__":
    sys.exit(main())
