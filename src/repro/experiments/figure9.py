"""Figure 9 — local work-group size tuning.

The paper compares the runtime of the accurate baseline and of the
Stencil1/Rows1 kernels across ten work-group shapes (2x128 ... 128x2) for
Gaussian, Inversion and Median, and observes that

* shapes with a larger x than y component are faster (better alignment
  with the row-major memory interface), and
* the optimal shape differs between the accurate baseline and the
  approximate kernels.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..api.engine import PerforationEngine
from ..core.config import ROWS1_NN, STENCIL1_NN, WORK_GROUP_CANDIDATES
from ..core.tuning import WorkGroupTiming
from ..data import single_image
from ..data.images import ImageClass
from .common import (
    ExperimentSettings,
    PARAMETRIZATION_APPS,
    format_table,
    make_engine,
)


@dataclass(frozen=True)
class Figure9Result:
    """Per-application work-group sweep."""

    timings: dict[str, list[WorkGroupTiming]]
    best_shape: dict[str, dict[str, tuple[int, int]]]
    settings: ExperimentSettings


def run(
    quick: bool = False,
    image_size: int | None = None,
    apps: tuple[str, ...] = PARAMETRIZATION_APPS,
    work_groups: tuple[tuple[int, int], ...] = WORK_GROUP_CANDIDATES,
    engine: PerforationEngine | None = None,
) -> Figure9Result:
    """Run the Figure 9 experiment."""
    settings = ExperimentSettings.for_mode(quick=quick, image_size=image_size)
    engine = engine or make_engine()
    image = single_image(ImageClass.NATURAL, size=settings.image_size, seed=42)

    timings: dict[str, list[WorkGroupTiming]] = {}
    best: dict[str, dict[str, tuple[int, int]]] = {}
    for name in apps:
        session = engine.session(app=name).with_inputs(image)
        configs = [ROWS1_NN] if session.app.halo == 0 else [STENCIL1_NN, ROWS1_NN]
        app_timings = session.sweep_work_groups(configs, work_groups=work_groups)
        timings[name] = app_timings
        best[name] = {}
        for variant in {t.variant for t in app_timings}:
            candidates = [t for t in app_timings if t.variant == variant]
            winner = min(candidates, key=lambda t: t.runtime_s)
            best[name][variant] = winner.work_group
    return Figure9Result(timings=timings, best_shape=best, settings=settings)


def render(result: Figure9Result) -> str:
    """One row per (application, work-group shape), one column per variant."""
    blocks = []
    for name, timings in result.timings.items():
        variants = sorted({t.variant for t in timings})
        shapes = sorted({t.work_group for t in timings}, key=lambda s: (s[1], s[0]))
        baseline_best = min(
            (t.runtime_s for t in timings if t.variant == "Baseline"), default=None
        )
        headers = ["Work group"] + [f"{v} (norm.)" for v in variants]
        rows = []
        for shape in shapes:
            row = [f"{shape[0]}x{shape[1]}"]
            for variant in variants:
                matching = [
                    t for t in timings if t.variant == variant and t.work_group == shape
                ]
                if not matching or baseline_best is None:
                    row.append("-")
                else:
                    row.append(f"{matching[0].runtime_s / baseline_best:.2f}")
            rows.append(row)
        best_lines = [
            f"  best shape for {variant}: {shape[0]}x{shape[1]}"
            for variant, shape in sorted(result.best_shape[name].items())
        ]
        blocks.append(
            f"[{name}] runtime normalised to the best Baseline shape\n"
            + format_table(headers, rows)
            + "\n"
            + "\n".join(best_lines)
        )
    title = (
        "Figure 9: local work-group size tuning "
        f"({result.settings.image_size}x{result.settings.image_size} natural image)\n\n"
    )
    return title + "\n\n".join(blocks)
