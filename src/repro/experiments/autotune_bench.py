"""``autotune`` — autotuner-efficiency benchmark of the ``repro.autotune`` subsystem.

Runs the exhaustive grid sweep (the paper's Section 6.3/6.4 procedure,
generalised to the autotuner's full search space) and a budget-aware
strategy side by side on one application, and reports

* the Pareto front each one found (they must agree — the strategy is only
  useful if it reproduces the exhaustive front);
* how many *full-fidelity* evaluations each spent — the figure of merit is
  the ratio ``exhaustive / strategy`` (higher is better; the acceptance
  bar for successive-halving on gaussian is >= 2.5x, i.e. the strategy
  reaches the reference front with at most 40% of the exhaustive
  evaluations);
* the budget-indexed ladder of the tuned result, and the tuning-database
  statistics when persistence is enabled.

Run it via ``python -m repro.experiments autotune`` (``--quick`` for the
CI smoke configuration); the machine-readable record consumed by
``benchmarks/check_regression.py`` is written by
``benchmarks/test_bench_autotune.py``.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path

from ..autotune import Tuner, TuningResult
from ..autotune.space import config_key
from ..data import generate_image
from .common import format_table, make_engine

#: Required ratio of exhaustive over strategy full-fidelity evaluations
#: (2.5x == the strategy spends at most 40% of the exhaustive evaluations).
REQUIRED_EVAL_RATIO = 2.5

#: Error budgets reported in the budget-indexed ladder.
LADDER_BUDGETS = (0.005, 0.01, 0.03, 0.05, 0.10)

#: Default input sizes (full / ``--quick``).
FULL_SIZE = 256
QUICK_SIZE = 64

#: Default location of the written report.
DEFAULT_RESULTS_PATH = Path("benchmarks") / "results" / "autotune_bench.txt"


@dataclass
class AutotuneBenchResult:
    """Everything the report renders."""

    app_name: str
    size: int
    strategy_name: str
    seed: int
    exhaustive: TuningResult
    tuned: TuningResult
    db_root: str | None
    db_hits: int
    db_misses: int

    @property
    def fronts_match(self) -> bool:
        """Whether the strategy reproduced the exhaustive Pareto front
        (same configurations)."""
        reference = {config_key(o.config) for o in self.exhaustive.front()}
        tuned = {config_key(o.config) for o in self.tuned.front()}
        return reference == tuned

    @property
    def eval_ratio(self) -> float:
        """Exhaustive over strategy full-fidelity evaluations (higher is
        better; only meaningful when the fronts match)."""
        if self.tuned.full_evaluations == 0:
            return float("inf")
        return self.exhaustive.full_evaluations / self.tuned.full_evaluations

    @property
    def gate_applies(self) -> bool:
        """The CI bar applies to the multi-fidelity strategy (the others
        are comparison points, not the subsystem's headline)."""
        return self.strategy_name == "successive-halving"

    @property
    def passed(self) -> bool:
        if not self.gate_applies:
            return True
        return self.fronts_match and self.eval_ratio >= REQUIRED_EVAL_RATIO


def run(
    quick: bool = False,
    app: str = "gaussian",
    size: int | None = None,
    strategy: str = "successive-halving",
    seed: int = 0,
    evals: int | None = None,
    db=False,
    device=None,
    workers: int | str = "auto",
) -> AutotuneBenchResult:
    """Run the exhaustive sweep and ``strategy`` on ``app`` and compare.

    ``db`` selects the tuning database (default off, so the benchmark
    measures honest evaluation counts; pass a path or ``None`` for the
    environment default to exercise persistence).
    """
    if size is None:
        size = QUICK_SIZE if quick else FULL_SIZE
    engine = make_engine(device=device, workers=workers)
    image = generate_image("natural", size=size, seed=42)
    tuner = Tuner(engine, seed=seed, db=db)

    exhaustive = tuner.tune(app, image, strategy="grid")
    tuned = tuner.tune(app, image, strategy=strategy, max_evals=evals)

    stats = tuner.db.stats() if tuner.db is not None else None
    return AutotuneBenchResult(
        app_name=app,
        size=size,
        strategy_name=strategy,
        seed=seed,
        exhaustive=exhaustive,
        tuned=tuned,
        db_root=str(tuner.db.root) if tuner.db is not None else None,
        db_hits=stats.hits if stats is not None else 0,
        db_misses=stats.misses if stats is not None else 0,
    )


def render(result: AutotuneBenchResult) -> str:
    """Text report of one autotune benchmark run."""
    exhaustive, tuned = result.exhaustive, result.tuned
    lines = [
        f"Autotune benchmark: {result.app_name} ({result.size}x{result.size}), "
        f"strategy {result.strategy_name!r}, seed {result.seed}",
        "",
        f"exhaustive sweep    : {exhaustive.full_evaluations:4d} full-fidelity evaluations "
        f"({len(exhaustive.front())} Pareto-optimal configs)",
        f"{result.strategy_name:<20s}: {tuned.full_evaluations:4d} full-fidelity evaluations "
        f"({tuned.evaluations} total incl. screening)"
        + (" [from tuning DB]" if tuned.from_db else ""),
        f"evaluation ratio    : {result.eval_ratio:6.2f}x "
        f"(required: >= {REQUIRED_EVAL_RATIO:.1f}x on successive-halving)",
        f"fronts match        : {'yes' if result.fronts_match else 'NO'}",
        "",
        "Pareto front (exhaustive reference):",
        format_table(
            ["config", "work group", "error", "speedup"],
            [
                [
                    o.config.label,
                    f"{o.config.work_group[0]}x{o.config.work_group[1]}",
                    f"{o.error * 100:6.2f}%",
                    f"{o.speedup:5.2f}x",
                ]
                for o in exhaustive.front()
            ],
        ),
        "",
        "Budget-indexed ladder (tuned result):",
    ]
    ladder = tuned.budget_ladder(LADDER_BUDGETS)
    rows = []
    for budget in LADDER_BUDGETS:
        config = ladder[budget]
        rows.append(
            [
                f"{budget * 100:5.1f}%",
                config.label if config is not None else "(accurate)",
                f"{config.work_group[0]}x{config.work_group[1]}" if config is not None else "-",
            ]
        )
    lines.append(format_table(["error budget", "config", "work group"], rows))
    if result.db_root is not None:
        lines.append("")
        lines.append(
            f"tuning DB: {result.db_root} "
            f"(hits {result.db_hits}, misses {result.db_misses})"
        )
    lines.append("")
    lines.append("PASSED" if result.passed else "FAILED")
    return "\n".join(lines)


def write_report(result: AutotuneBenchResult, path: str | None = None) -> Path:
    """Write the rendered report (default: benchmarks/results/autotune_bench.txt)."""
    target = Path(path) if path else DEFAULT_RESULTS_PATH
    target.parent.mkdir(parents=True, exist_ok=True)
    target.write_text(render(result) + "\n", encoding="utf-8")
    return target
