"""The perforation pipeline: evaluate an application under a configuration.

This module implements Figure 1b of the paper as a reusable harness: the
input is perforated and reconstructed (through the application's
approximate execution path), the kernel output is compared against the
accurate reference to obtain the error, and the analytical timing model
supplies the runtime of both versions to obtain the speedup.

Applications are duck-typed; :class:`repro.apps.base.Application` provides
the expected interface (``reference``, ``approximate``, ``profile``,
``global_size``, ``error_metric``, ``baseline_work_group``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Sequence

import numpy as np

from ..clsim.device import Device, firepro_w5100
from ..clsim.ndrange import NDRange
from ..clsim.timing import TimingBreakdown, TimingModel
from .config import ACCURATE_CONFIG, ApproximationConfig
from .errors import ConfigurationError
from .quality import ErrorSummary, compute_error


@dataclass(frozen=True)
class ConfigurationResult:
    """Error and modelled performance of one (application, configuration) pair."""

    app_name: str
    config: ApproximationConfig
    error: float
    baseline_time_s: float
    approx_time_s: float
    baseline_timing: TimingBreakdown
    approx_timing: TimingBreakdown

    @property
    def speedup(self) -> float:
        """Speedup of the approximate kernel over the accurate baseline."""
        return self.baseline_time_s / self.approx_time_s

    @property
    def runtime_ms(self) -> float:
        """Modelled runtime of the approximate kernel in milliseconds."""
        return self.approx_time_s * 1e3

    def describe(self) -> str:
        return (
            f"{self.app_name:<10s} {self.config.label:<14s} "
            f"error={self.error * 100:6.2f}%  speedup={self.speedup:5.2f}x  "
            f"runtime={self.runtime_ms:7.3f} ms"
        )


@dataclass(frozen=True)
class DatasetResult:
    """Error distribution of one configuration over a dataset (Figure 6)."""

    app_name: str
    config: ApproximationConfig
    errors: tuple[float, ...]
    summary: ErrorSummary
    speedup: float
    baseline_time_s: float
    approx_time_s: float

    def describe(self) -> str:
        return (
            f"{self.app_name:<10s} {self.config.label:<14s} "
            f"median err={self.summary.median * 100:6.2f}%  "
            f"mean err={self.summary.mean * 100:6.2f}%  "
            f"p75={self.summary.p75 * 100:6.2f}%  max={self.summary.maximum * 100:6.2f}%  "
            f"speedup={self.speedup:5.2f}x"
        )


def timing_for(
    app, config: ApproximationConfig, inputs, device: Device | None = None
) -> TimingBreakdown:
    """Modelled runtime of ``app`` under ``config`` for the given inputs."""
    device = device or firepro_w5100()
    model = TimingModel(device)
    profile, ndrange = app.profile(config, app.global_size(inputs))
    return model.estimate(profile, ndrange)


def baseline_config_for(app) -> ApproximationConfig:
    """The accurate configuration the speedups are measured against."""
    return ACCURATE_CONFIG.with_work_group(app.baseline_work_group)


def evaluate_configuration(
    app,
    inputs,
    config: ApproximationConfig,
    device: Device | None = None,
    reference: np.ndarray | None = None,
) -> ConfigurationResult:
    """Run the full pipeline of Figure 1b for one input and configuration.

    ``reference`` may be supplied to avoid recomputing the accurate output
    when sweeping many configurations over the same input.
    """
    device = device or firepro_w5100()
    config.validate_for_halo(app.halo)
    model = TimingModel(device)

    if reference is None:
        reference = app.reference(inputs)
    approximate = app.approximate(inputs, config)
    error = compute_error(reference, approximate, app.error_metric)

    global_size = app.global_size(inputs)
    base_profile, base_nd = app.profile(baseline_config_for(app), global_size)
    approx_profile, approx_nd = app.profile(config, global_size)
    baseline_timing = model.estimate(base_profile, base_nd)
    approx_timing = model.estimate(approx_profile, approx_nd)

    return ConfigurationResult(
        app_name=app.name,
        config=config,
        error=error,
        baseline_time_s=baseline_timing.total_time_s,
        approx_time_s=approx_timing.total_time_s,
        baseline_timing=baseline_timing,
        approx_timing=approx_timing,
    )


def evaluate_dataset(
    app,
    dataset: Sequence,
    config: ApproximationConfig,
    device: Device | None = None,
) -> DatasetResult:
    """Evaluate one configuration over a whole dataset.

    The error is computed per input; the speedup is computed once (it
    depends only on the configuration, as the paper notes in Section 6.2).
    """
    if not dataset:
        raise ConfigurationError("dataset must contain at least one input")
    device = device or firepro_w5100()
    errors: list[float] = []
    for inputs in dataset:
        reference = app.reference(inputs)
        approximate = app.approximate(inputs, config)
        errors.append(compute_error(reference, approximate, app.error_metric))

    model = TimingModel(device)
    global_size = app.global_size(dataset[0])
    base_profile, base_nd = app.profile(baseline_config_for(app), global_size)
    approx_profile, approx_nd = app.profile(config, global_size)
    baseline_time = model.estimate(base_profile, base_nd).total_time_s
    approx_time = model.estimate(approx_profile, approx_nd).total_time_s

    return DatasetResult(
        app_name=app.name,
        config=config,
        errors=tuple(errors),
        summary=ErrorSummary.from_errors(errors),
        speedup=baseline_time / approx_time,
        baseline_time_s=baseline_time,
        approx_time_s=approx_time,
    )


def evaluate_many(
    app,
    inputs,
    configs: Iterable[ApproximationConfig],
    device: Device | None = None,
) -> list[ConfigurationResult]:
    """Evaluate several configurations on the same input (shared reference)."""
    device = device or firepro_w5100()
    reference = app.reference(inputs)
    results = []
    for config in configs:
        results.append(
            evaluate_configuration(app, inputs, config, device=device, reference=reference)
        )
    return results
