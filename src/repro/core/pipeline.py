"""The perforation pipeline: evaluate an application under a configuration.

This module implements Figure 1b of the paper as a reusable harness: the
input is perforated and reconstructed (through the application's
approximate execution path), the kernel output is compared against the
accurate reference to obtain the error, and the analytical timing model
supplies the runtime of both versions to obtain the speedup.

Applications are duck-typed; :class:`repro.apps.base.Application` provides
the expected interface (``reference``, ``approximate``, ``profile``,
``global_size``, ``error_metric``, ``baseline_work_group``).

.. deprecated::
    The free functions (:func:`evaluate_configuration`,
    :func:`evaluate_dataset`, :func:`evaluate_many`) are deprecation shims
    over :class:`repro.api.PerforationEngine`, which adds result caching
    and parallel sweeps.  The result dataclasses defined here remain the
    canonical return types.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass
from typing import Iterable, Sequence

import numpy as np

from ..clsim.device import Device
from ..clsim.timing import TimingBreakdown
from .config import ACCURATE_CONFIG, ApproximationConfig
from .quality import ErrorSummary


@dataclass(frozen=True)
class ConfigurationResult:
    """Error and modelled performance of one (application, configuration) pair."""

    app_name: str
    config: ApproximationConfig
    error: float
    baseline_time_s: float
    approx_time_s: float
    baseline_timing: TimingBreakdown
    approx_timing: TimingBreakdown

    @property
    def speedup(self) -> float:
        """Speedup of the approximate kernel over the accurate baseline."""
        return self.baseline_time_s / self.approx_time_s

    @property
    def runtime_ms(self) -> float:
        """Modelled runtime of the approximate kernel in milliseconds."""
        return self.approx_time_s * 1e3

    def describe(self) -> str:
        return (
            f"{self.app_name:<10s} {self.config.label:<14s} "
            f"error={self.error * 100:6.2f}%  speedup={self.speedup:5.2f}x  "
            f"runtime={self.runtime_ms:7.3f} ms"
        )


@dataclass(frozen=True)
class DatasetResult:
    """Error distribution of one configuration over a dataset (Figure 6)."""

    app_name: str
    config: ApproximationConfig
    errors: tuple[float, ...]
    summary: ErrorSummary
    speedup: float
    baseline_time_s: float
    approx_time_s: float

    def describe(self) -> str:
        return (
            f"{self.app_name:<10s} {self.config.label:<14s} "
            f"median err={self.summary.median * 100:6.2f}%  "
            f"mean err={self.summary.mean * 100:6.2f}%  "
            f"p75={self.summary.p75 * 100:6.2f}%  max={self.summary.maximum * 100:6.2f}%  "
            f"speedup={self.speedup:5.2f}x"
        )


def timing_for(
    app, config: ApproximationConfig, inputs, device: Device | None = None
) -> TimingBreakdown:
    """Modelled runtime of ``app`` under ``config`` for the given inputs."""
    from ..api.engine import shared_engine

    engine = shared_engine(device)
    return engine.timing(app, config, app.global_size(inputs))


def baseline_config_for(app) -> ApproximationConfig:
    """The accurate configuration the speedups are measured against."""
    return ACCURATE_CONFIG.with_work_group(app.baseline_work_group)


def _deprecated(old: str, new: str) -> None:
    warnings.warn(
        f"{old} is deprecated; use {new} instead",
        DeprecationWarning,
        stacklevel=3,
    )


def evaluate_configuration(
    app,
    inputs,
    config: ApproximationConfig,
    device: Device | None = None,
    reference: np.ndarray | None = None,
) -> ConfigurationResult:
    """Run the full pipeline of Figure 1b for one input and configuration.

    ``reference`` may be supplied to avoid recomputing the accurate output
    when sweeping many configurations over the same input.

    .. deprecated:: Use :meth:`repro.api.PerforationEngine.evaluate`.
    """
    from ..api.engine import shared_engine

    _deprecated("evaluate_configuration()", "PerforationEngine.evaluate()")
    return shared_engine(device).evaluate(app, inputs, config, reference=reference)


def evaluate_dataset(
    app,
    dataset: Sequence,
    config: ApproximationConfig,
    device: Device | None = None,
) -> DatasetResult:
    """Evaluate one configuration over a whole dataset.

    The error is computed per input; the speedup is computed once (it
    depends only on the configuration, as the paper notes in Section 6.2).

    .. deprecated:: Use :meth:`repro.api.PerforationEngine.evaluate_dataset`.
    """
    from ..api.engine import shared_engine

    _deprecated("evaluate_dataset()", "PerforationEngine.evaluate_dataset()")
    return shared_engine(device).evaluate_dataset(app, dataset, config)


def evaluate_many(
    app,
    inputs,
    configs: Iterable[ApproximationConfig],
    device: Device | None = None,
) -> list[ConfigurationResult]:
    """Evaluate several configurations on the same input (shared reference).

    .. deprecated:: Use :meth:`repro.api.PerforationEngine.evaluate_many`.
    """
    from ..api.engine import shared_engine

    _deprecated("evaluate_many()", "PerforationEngine.evaluate_many()")
    return shared_engine(device).evaluate_many(app, inputs, configs)
