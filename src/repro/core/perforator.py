"""Compiler-level kernel perforation.

:class:`KernelPerforator` is the automatic version of what the paper's
authors did by hand (and announce as future work in Section 7): it takes
OpenCL C kernel source, analyses its access pattern, and applies the local
prefetch + perforation + reconstruction passes to produce an approximate
kernel — both as executable form (for the :mod:`repro.clsim` simulator) and
as OpenCL C text (for a real GPU).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..clsim.kernel import Kernel
from ..kernellang import ast
from ..kernellang.analysis import AccessPatternInfo, analyze_kernel, reuse_info
from ..kernellang.clgen import generate
from ..kernellang.interpreter import KernelInterpreter
from ..kernellang.parser import parse_program
from ..kernellang.transforms import (
    LINEAR_INTERPOLATION as T_LINEAR,
    NEAREST_NEIGHBOR as T_NEAREST,
    LocalPrefetchPass,
    PassManager,
    PerforationPass,
    ReconstructionPass,
)
from ..kernellang.typecheck import check_program
from .config import ApproximationConfig
from .errors import ConfigurationError
from .reconstruction import LINEAR_INTERPOLATION, NEAREST_NEIGHBOR
from .schemes import KIND_ROWS, KIND_STENCIL

_TECHNIQUE_MAP = {
    NEAREST_NEIGHBOR: T_NEAREST,
    LINEAR_INTERPOLATION: T_LINEAR,
}


@dataclass
class PerforatedKernel:
    """The result of perforating one kernel for one configuration."""

    name: str
    config: ApproximationConfig
    program: ast.Program
    kernel_def: ast.FunctionDef
    notes: list[str] = field(default_factory=list)

    @property
    def source(self) -> str:
        """OpenCL C source of the transformed kernel."""
        return generate(self.program)

    def executable(self) -> Kernel:
        """Executable form for the :mod:`repro.clsim` functional executor."""
        return KernelInterpreter(self.program, self.name).as_clsim_kernel()

    def local_tile_names(self) -> list[str]:
        """Names of the ``__local`` tiles the transformation introduced."""
        names = []
        for node in self.kernel_def.body.walk():
            if isinstance(node, ast.VarDecl) and node.address_space == "local":
                names.append(node.name)
        return names


class KernelPerforator:
    """Applies the paper's transformation to OpenCL C kernel source."""

    def __init__(self, source: str, kernel_name: str | None = None) -> None:
        self.source = source
        self.kernel_name = kernel_name
        program = parse_program(source)
        check_program(program)
        self._template = program
        self._kernel_def = program.kernel(kernel_name)
        self.pattern_info: AccessPatternInfo = analyze_kernel(self._kernel_def)

    # ------------------------------------------------------------------
    @property
    def halo(self) -> int:
        """Stencil halo of the kernel's input accesses."""
        return self.pattern_info.max_halo

    @property
    def input_buffers(self) -> list[str]:
        """Global buffers the kernel reads."""
        return sorted(self.pattern_info.input_buffers)

    def reuse_factors(self, tile_x: int, tile_y: int) -> dict[str, float]:
        """Per-buffer data-reuse factor for a given work-group shape."""
        info = reuse_info(self._kernel_def, self.pattern_info)
        return {name: r.reuse_factor(tile_x, tile_y) for name, r in info.items()}

    def accurate(self) -> PerforatedKernel:
        """The untouched kernel, wrapped in the same result type."""
        program = parse_program(self.source)
        return PerforatedKernel(
            name=self._kernel_def.name,
            config=ApproximationConfig(),
            program=program,
            kernel_def=program.kernel(self.kernel_name),
            notes=["accurate kernel (no transformation)"],
        )

    # ------------------------------------------------------------------
    def perforate(
        self,
        config: ApproximationConfig,
        buffers: list[str] | None = None,
    ) -> PerforatedKernel:
        """Produce the perforated kernel for ``config``.

        ``buffers`` limits the transformation to the named input buffers.
        By default every input buffer is staged in local memory and
        perforated — except under the stencil scheme, where buffers without
        a halo (e.g. Hotspot's power map) are staged accurately instead,
        exactly as the NumPy fast path treats them.
        """
        config.validate_for_halo(self.halo)
        if config.is_accurate:
            return self.accurate()

        scheme_kind = config.scheme.kind
        if scheme_kind not in (KIND_ROWS, KIND_STENCIL):
            raise ConfigurationError(
                f"the compiler path supports row and stencil schemes, not {scheme_kind!r} "
                "(use the NumPy fast path for column/random schemes)"
            )
        technique = _TECHNIQUE_MAP[config.reconstruction]

        stage_buffers = buffers
        if buffers is None and scheme_kind == KIND_STENCIL:
            buffers = [
                name
                for name in self.input_buffers
                if self.pattern_info.summary(name).halo > 0
            ]
            if not buffers:
                raise ConfigurationError(
                    "the stencil scheme requires at least one input buffer with a halo"
                )

        program = parse_program(self.source)
        kernel_def = program.kernel(self.kernel_name)
        tile_x, tile_y = config.work_group

        passes = [LocalPrefetchPass(buffers=stage_buffers)]
        if scheme_kind == KIND_ROWS:
            passes.append(PerforationPass("rows", step=config.scheme.step, buffers=buffers))  # type: ignore[attr-defined]
        else:
            passes.append(PerforationPass("stencil", buffers=buffers))
        passes.append(ReconstructionPass(technique, buffers=buffers))

        context = PassManager(passes).run(kernel_def, tile_x, tile_y)
        return PerforatedKernel(
            name=kernel_def.name,
            config=config,
            program=program,
            kernel_def=kernel_def,
            notes=list(context.notes),
        )

    def optimize_with_local_memory(
        self, work_group: tuple[int, int], buffers: list[str] | None = None
    ) -> PerforatedKernel:
        """Apply only the local-memory prefetch (no perforation).

        This is the accurate-but-optimised baseline the paper compares
        against for kernels with data reuse.
        """
        program = parse_program(self.source)
        kernel_def = program.kernel(self.kernel_name)
        tile_x, tile_y = work_group
        context = PassManager([LocalPrefetchPass(buffers=buffers)]).run(
            kernel_def, tile_x, tile_y
        )
        return PerforatedKernel(
            name=kernel_def.name,
            config=ApproximationConfig(work_group=work_group),
            program=program,
            kernel_def=kernel_def,
            notes=list(context.notes),
        )
