"""Output-quality metrics.

The paper uses two metrics (Table 1): the *mean relative error* (MRE) for
Gaussian, Median, Hotspot and Inversion, and the *mean error* for the
Sobel applications (whose outputs are frequently zero, which makes the MRE
ill-defined).  Both are provided here, together with a few additional
metrics (RMSE, PSNR, maximum error) that are useful for the extended
analyses and for tests.
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass

import numpy as np

from .errors import QualityError

#: Denominator guard for the mean relative error: reference values whose
#: magnitude is below this threshold are excluded from the mean (the paper
#: notes the metric is "very high or undefined" there).
MRE_EPSILON = 1e-6

#: Additional relative floor for the MRE denominator: reference values are
#: never divided by less than this fraction of the reference maximum.  The
#: paper observes that near-zero reference values make the MRE explode
#: (and switches Sobel to the mean error for that reason); the floor keeps
#: the metric finite for applications such as Inversion whose outputs pass
#: through zero while leaving mid-range values untouched.
MRE_RELATIVE_FLOOR = 0.01


class ErrorMetric(str, enum.Enum):
    """Error metrics used in the evaluation."""

    MEAN_RELATIVE_ERROR = "mean relative error"
    MEAN_ERROR = "mean error"
    RMSE = "root mean squared error"
    MAX_ERROR = "maximum error"
    PSNR = "peak signal-to-noise ratio"


def _validate(reference: np.ndarray, approximate: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    ref = np.asarray(reference, dtype=np.float64)
    approx = np.asarray(approximate, dtype=np.float64)
    if ref.shape != approx.shape:
        raise QualityError(
            f"shape mismatch: reference {ref.shape} vs approximate {approx.shape}"
        )
    if ref.size == 0:
        raise QualityError("cannot compute an error on empty arrays")
    return ref, approx


def mean_relative_error(
    reference: np.ndarray,
    approximate: np.ndarray,
    epsilon: float = MRE_EPSILON,
    relative_floor: float = MRE_RELATIVE_FLOOR,
) -> float:
    """Mean of ``|ref - approx| / |ref|`` with a floored denominator.

    Elements whose reference magnitude is below ``epsilon`` are excluded;
    the remaining denominators are floored at ``relative_floor`` times the
    reference maximum so that isolated near-zero reference values cannot
    dominate the mean (the failure mode the paper describes in Section 6.1).
    If every reference value is (near) zero the function falls back to the
    normalised mean error, mirroring the paper's choice for Sobel.
    """
    ref, approx = _validate(reference, approximate)
    magnitude = np.abs(ref)
    valid = magnitude > epsilon
    if not valid.any():
        return normalized_mean_error(ref, approx)
    floor = relative_floor * float(magnitude.max())
    denominator = np.maximum(magnitude[valid], floor)
    return float(np.mean(np.abs(ref[valid] - approx[valid]) / denominator))


def mean_error(reference: np.ndarray, approximate: np.ndarray) -> float:
    """Mean absolute error, ``mean(|ref - approx|)`` (unnormalised)."""
    ref, approx = _validate(reference, approximate)
    return float(np.mean(np.abs(ref - approx)))


def normalized_mean_error(reference: np.ndarray, approximate: np.ndarray) -> float:
    """Mean absolute error normalised by the reference dynamic range.

    Used for the Sobel applications so that the reported numbers are
    comparable fractions (the paper plots Sobel's "mean error" on the same
    0-0.35 axis as the relative errors of the other applications).
    """
    ref, approx = _validate(reference, approximate)
    scale = float(ref.max() - ref.min())
    if scale <= 0:
        scale = max(float(np.abs(ref).max()), 1.0)
    return float(np.mean(np.abs(ref - approx)) / scale)


def rmse(reference: np.ndarray, approximate: np.ndarray) -> float:
    """Root mean squared error."""
    ref, approx = _validate(reference, approximate)
    return float(np.sqrt(np.mean((ref - approx) ** 2)))


def max_error(reference: np.ndarray, approximate: np.ndarray) -> float:
    """Maximum absolute error."""
    ref, approx = _validate(reference, approximate)
    return float(np.max(np.abs(ref - approx)))


def psnr(reference: np.ndarray, approximate: np.ndarray, peak: float | None = None) -> float:
    """Peak signal-to-noise ratio in dB (``inf`` for identical arrays)."""
    ref, approx = _validate(reference, approximate)
    mse = float(np.mean((ref - approx) ** 2))
    if mse == 0:
        return math.inf
    if peak is None:
        peak = float(np.abs(ref).max())
        if peak <= 0:
            peak = 1.0
    return float(10.0 * math.log10(peak * peak / mse))


def compute_error(
    reference: np.ndarray, approximate: np.ndarray, metric: ErrorMetric
) -> float:
    """Dispatch on :class:`ErrorMetric`."""
    if metric is ErrorMetric.MEAN_RELATIVE_ERROR:
        return mean_relative_error(reference, approximate)
    if metric is ErrorMetric.MEAN_ERROR:
        return normalized_mean_error(reference, approximate)
    if metric is ErrorMetric.RMSE:
        return rmse(reference, approximate)
    if metric is ErrorMetric.MAX_ERROR:
        return max_error(reference, approximate)
    if metric is ErrorMetric.PSNR:
        return psnr(reference, approximate)
    raise QualityError(f"unknown error metric {metric!r}")


@dataclass(frozen=True)
class ErrorSummary:
    """Distribution statistics of per-input errors (one box of Figure 6)."""

    count: int
    mean: float
    median: float
    minimum: float
    maximum: float
    p25: float
    p75: float
    std: float

    @classmethod
    def from_errors(cls, errors: list[float] | np.ndarray) -> "ErrorSummary":
        values = np.asarray(list(errors), dtype=np.float64)
        if values.size == 0:
            raise QualityError("cannot summarise an empty error list")
        return cls(
            count=int(values.size),
            mean=float(values.mean()),
            median=float(np.median(values)),
            minimum=float(values.min()),
            maximum=float(values.max()),
            p25=float(np.percentile(values, 25)),
            p75=float(np.percentile(values, 75)),
            std=float(values.std()),
        )

    def describe(self) -> str:
        return (
            f"n={self.count} mean={self.mean:.4f} median={self.median:.4f} "
            f"p25={self.p25:.4f} p75={self.p75:.4f} max={self.maximum:.4f}"
        )
