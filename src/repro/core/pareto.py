"""Pareto-optimality analysis (Section 6.4 of the paper).

Every evaluated configuration is a point in the (speedup, error) plane;
a configuration is Pareto-optimal when no other configuration is both
faster and more accurate.  The functions here are generic over any object
exposing ``speedup`` and ``error`` attributes (e.g.
:class:`~repro.core.pipeline.ConfigurationResult` or
:class:`~repro.core.tuning.SweepPoint`).
"""

from __future__ import annotations

from typing import Callable, Sequence, TypeVar

T = TypeVar("T")


def _default_error(point) -> float:
    return float(point.error)


def _default_speedup(point) -> float:
    return float(point.speedup)


def dominates(
    a: T,
    b: T,
    error_of: Callable[[T], float] = _default_error,
    speedup_of: Callable[[T], float] = _default_speedup,
) -> bool:
    """Whether point ``a`` dominates point ``b``.

    ``a`` dominates ``b`` when it is at least as fast *and* at least as
    accurate, and strictly better in at least one of the two.
    """
    not_worse = speedup_of(a) >= speedup_of(b) and error_of(a) <= error_of(b)
    strictly_better = speedup_of(a) > speedup_of(b) or error_of(a) < error_of(b)
    return not_worse and strictly_better


def pareto_front(
    points: Sequence[T],
    error_of: Callable[[T], float] = _default_error,
    speedup_of: Callable[[T], float] = _default_speedup,
) -> list[T]:
    """Return the Pareto-optimal subset of ``points``.

    The result is sorted by increasing speedup (and therefore, along the
    front, by increasing error), which matches how the paper draws the
    dashed front in Figure 10.

    Tie handling is deterministic and exact:

    * points that tie on one objective but differ on the other are ordinary
      dominance cases — the worse point is dropped;
    * points with *bit-identical* ``(speedup, error)`` pairs do not
      dominate each other; the front keeps exactly one witness per
      duplicated pair — the occurrence that comes **first in the input
      sequence** — no matter how many duplicates follow or where they sit.
      (Near-ties that differ in the last few bits are distinct points and
      are all kept when mutually non-dominating; no rounding is applied.)

    Consequently a front never contains two entries with the same
    ``(speedup, error)`` pair, and reordering the input can only permute
    which *equal-valued* witness is returned, never change the front's
    value set or size.
    """
    front: list[tuple[tuple[float, float], T]] = []
    seen: set[tuple[float, float]] = set()
    for candidate in points:
        key = (speedup_of(candidate), error_of(candidate))
        if key in seen:
            continue  # duplicate pair: the first occurrence is the witness
        if any(
            dominates(other, candidate, error_of, speedup_of)
            for other in points
            if other is not candidate
        ):
            continue
        seen.add(key)
        front.append((key, candidate))
    front.sort(key=lambda entry: entry[0])
    return [candidate for _, candidate in front]


def is_pareto_optimal(
    point: T,
    points: Sequence[T],
    error_of: Callable[[T], float] = _default_error,
    speedup_of: Callable[[T], float] = _default_speedup,
) -> bool:
    """Whether ``point`` is on the Pareto front of ``points``."""
    return not any(
        dominates(other, point, error_of, speedup_of)
        for other in points
        if other is not point
    )


def hypervolume_2d(
    points: Sequence[T],
    error_of: Callable[[T], float] = _default_error,
    speedup_of: Callable[[T], float] = _default_speedup,
    reference_speedup: float = 1.0,
    reference_error: float = 0.10,
) -> float:
    """Area dominated by the Pareto front, relative to a reference point.

    A simple scalar summary used by the ablation benchmarks to compare
    whole fronts (ours vs. Paraprox): larger is better.  The reference
    point defaults to the accurate configuration (speedup 1x) at the 10%
    error budget used by prior work.
    """
    front = pareto_front(points, error_of, speedup_of)
    if not front:
        return 0.0
    area = 0.0
    previous_error = reference_error
    for point in sorted(front, key=speedup_of, reverse=True):
        speedup = speedup_of(point)
        error = error_of(point)
        if speedup <= reference_speedup or error >= previous_error:
            continue
        area += (speedup - reference_speedup) * (previous_error - error)
        previous_error = error
    return area
