"""Quality-aware runtime (deprecation shim).

The quality-aware loop — *calibrate* candidate configurations on
representative inputs, *select* the fastest one expected to meet an error
budget, *execute* new inputs with it while optionally monitoring the
achieved quality — now lives in the fluent session API:

.. code-block:: python

    from repro.api import PerforationEngine

    session = PerforationEngine().session(app="gaussian")
    session.autotune(error_budget=0.05, calibration_inputs=images)
    record = session.run(new_image, monitor=True)

:class:`QualityAwareRuntime` remains as a thin, deprecated wrapper over
:class:`repro.api.session.Session` so existing code keeps working; the
:class:`CalibrationEntry` and :class:`ExecutionRecord` dataclasses are
re-exported from their new home in :mod:`repro.api.session`.
"""

from __future__ import annotations

import warnings
from typing import Iterable, Sequence

from ..api.session import CalibrationEntry, ExecutionRecord
from ..clsim.device import Device
from .config import ApproximationConfig, default_configurations
from .errors import TuningError

__all__ = ["CalibrationEntry", "ExecutionRecord", "QualityAwareRuntime"]


class QualityAwareRuntime:
    """Selects and applies perforation configurations under an error budget.

    .. deprecated:: Use ``engine.session(app).autotune(error_budget=...)``.
    """

    def __init__(
        self,
        app,
        error_budget: float,
        device: Device | None = None,
        safety_margin: float = 0.25,
        configs: Iterable[ApproximationConfig] | None = None,
    ) -> None:
        warnings.warn(
            "QualityAwareRuntime is deprecated; use "
            "PerforationEngine().session(app).autotune(error_budget=...) instead",
            DeprecationWarning,
            stacklevel=2,
        )
        if error_budget <= 0:
            raise TuningError("error budget must be positive")
        from ..api.engine import PerforationEngine

        self._engine = PerforationEngine(device=device)
        self._session = self._engine.session(
            app,
            configs=list(configs) if configs is not None else default_configurations(app.halo),
            error_budget=error_budget,
            safety_margin=safety_margin,
        )

    # ------------------------------------------------------------------
    # Attribute surface of the original class, proxied to the session.
    # ------------------------------------------------------------------
    @property
    def app(self):
        return self._session.app

    @property
    def error_budget(self) -> float:
        return self._session.error_budget

    @error_budget.setter
    def error_budget(self, value: float) -> None:
        self._session.error_budget = value

    @property
    def device(self) -> Device:
        return self._engine.device

    @property
    def safety_margin(self) -> float:
        return self._session.safety_margin

    @safety_margin.setter
    def safety_margin(self, value: float) -> None:
        self._session.safety_margin = value

    @property
    def configs(self) -> list[ApproximationConfig]:
        return self._session.configs

    @configs.setter
    def configs(self, value) -> None:
        self._session.configs = list(value)

    @property
    def calibration(self) -> list[CalibrationEntry]:
        return self._session.calibration

    @calibration.setter
    def calibration(self, value) -> None:
        self._session.calibration = list(value)

    @property
    def selected(self) -> ApproximationConfig:
        return self._session.selected

    @selected.setter
    def selected(self, value: ApproximationConfig) -> None:
        self._session.selected = value

    @property
    def history(self) -> list[ExecutionRecord]:
        return self._session.history

    # ------------------------------------------------------------------
    def calibrate(self, calibration_inputs: Sequence) -> list[CalibrationEntry]:
        """Measure error/speedup of every candidate on the calibration inputs."""
        if len(calibration_inputs) == 0:
            raise TuningError("calibration requires at least one input")
        return self._session.calibrate(calibration_inputs)

    def select(self) -> ApproximationConfig:
        """Fastest calibrated configuration expected to meet the budget."""
        return self._session.select()

    def execute(self, inputs, monitor: bool = False) -> ExecutionRecord:
        """Run the application on ``inputs`` with the selected configuration."""
        return self._session.run(inputs, monitor=monitor)

    def report(self) -> str:
        """Human-readable calibration + selection summary."""
        return self._session.report()
