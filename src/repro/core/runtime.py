"""Quality-aware runtime.

The paper's conclusion sketches a library that "can automatically apply and
tune the technique to approximable kernels" — the same role the runtime
helper plays in Paraprox: given a target output quality, pick the kernel
variant that meets it at the highest speedup.  :class:`QualityAwareRuntime`
implements that loop on top of the tuning machinery:

1. *calibrate* on a (small) set of representative inputs, measuring the
   error of every candidate configuration and the modelled runtime;
2. *select* the fastest configuration whose calibrated error (plus a safety
   margin) stays within the user's error budget;
3. *execute* new inputs with the selected configuration, optionally
   monitoring the achieved quality and falling back to a more accurate
   configuration when the budget is violated.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Sequence

import numpy as np

from ..clsim.device import Device, firepro_w5100
from .config import ACCURATE_CONFIG, ApproximationConfig, default_configurations
from .errors import TuningError
from .pipeline import evaluate_configuration
from .quality import compute_error
from .tuning import SweepPoint, SweepResult, sweep_configurations


@dataclass(frozen=True)
class CalibrationEntry:
    """Calibrated statistics of one configuration."""

    config: ApproximationConfig
    mean_error: float
    max_error: float
    speedup: float

    def admissible(self, budget: float, safety_margin: float) -> bool:
        """Whether this configuration is expected to meet ``budget``."""
        return self.mean_error * (1.0 + safety_margin) <= budget


@dataclass
class ExecutionRecord:
    """Outcome of one monitored execution."""

    config: ApproximationConfig
    error: float | None
    within_budget: bool
    output: np.ndarray


class QualityAwareRuntime:
    """Selects and applies perforation configurations under an error budget."""

    def __init__(
        self,
        app,
        error_budget: float,
        device: Device | None = None,
        safety_margin: float = 0.25,
        configs: Iterable[ApproximationConfig] | None = None,
    ) -> None:
        if error_budget <= 0:
            raise TuningError("error budget must be positive")
        self.app = app
        self.error_budget = error_budget
        self.device = device or firepro_w5100()
        self.safety_margin = safety_margin
        self.configs = list(configs) if configs is not None else default_configurations(app.halo)
        self.calibration: list[CalibrationEntry] = []
        self.selected: ApproximationConfig = ACCURATE_CONFIG
        self.history: list[ExecutionRecord] = []

    # ------------------------------------------------------------------
    def calibrate(self, calibration_inputs: Sequence) -> list[CalibrationEntry]:
        """Measure error/speedup of every candidate on the calibration inputs."""
        if not calibration_inputs:
            raise TuningError("calibration requires at least one input")
        per_config: dict[str, list[SweepPoint]] = {}
        for inputs in calibration_inputs:
            sweep: SweepResult = sweep_configurations(
                self.app, inputs, self.configs, device=self.device
            )
            for point in sweep.points:
                per_config.setdefault(point.config.label, []).append(point)

        self.calibration = []
        for label, points in per_config.items():
            errors = [p.error for p in points]
            self.calibration.append(
                CalibrationEntry(
                    config=points[0].config,
                    mean_error=float(np.mean(errors)),
                    max_error=float(np.max(errors)),
                    speedup=points[0].speedup,
                )
            )
        self.calibration.sort(key=lambda e: e.speedup, reverse=True)
        self.selected = self.select()
        return self.calibration

    def select(self) -> ApproximationConfig:
        """Fastest calibrated configuration expected to meet the budget.

        Falls back to the accurate configuration when nothing qualifies.
        """
        if not self.calibration:
            raise TuningError("calibrate() must be called before select()")
        for entry in self.calibration:  # sorted fastest-first
            if entry.admissible(self.error_budget, self.safety_margin):
                return entry.config
        return ACCURATE_CONFIG

    # ------------------------------------------------------------------
    def execute(self, inputs, monitor: bool = False) -> ExecutionRecord:
        """Run the application on ``inputs`` with the selected configuration.

        With ``monitor=True`` the accurate output is also computed, the
        achieved error recorded, and the configuration demoted to a more
        accurate one when the budget was violated (mirroring the
        recalibration loop of quality-aware runtimes such as SAGE).
        """
        config = self.selected
        if config.is_accurate:
            output = self.app.reference(inputs)
            record = ExecutionRecord(config=config, error=0.0, within_budget=True, output=output)
            self.history.append(record)
            return record

        output = self.app.approximate(inputs, config)
        error = None
        within = True
        if monitor:
            reference = self.app.reference(inputs)
            error = compute_error(reference, output, self.app.error_metric)
            within = error <= self.error_budget
            if not within:
                self._demote(config)
        record = ExecutionRecord(config=config, error=error, within_budget=within, output=output)
        self.history.append(record)
        return record

    def _demote(self, config: ApproximationConfig) -> None:
        """Switch to the next more accurate calibrated configuration."""
        more_accurate = [
            entry
            for entry in sorted(self.calibration, key=lambda e: e.mean_error)
            if entry.config.label != config.label
        ]
        for entry in more_accurate:
            if entry.mean_error < self._calibrated_error(config):
                self.selected = entry.config
                return
        self.selected = ACCURATE_CONFIG

    def _calibrated_error(self, config: ApproximationConfig) -> float:
        for entry in self.calibration:
            if entry.config.label == config.label:
                return entry.mean_error
        return float("inf")

    # ------------------------------------------------------------------
    def report(self) -> str:
        """Human-readable calibration + selection summary."""
        lines = [
            f"Quality-aware runtime for {self.app.name!r} "
            f"(budget {self.error_budget:.2%}, margin {self.safety_margin:.0%})"
        ]
        for entry in self.calibration:
            marker = "*" if entry.config.label == self.selected.label else " "
            lines.append(
                f" {marker} {entry.config.label:<14s} mean err {entry.mean_error * 100:6.2f}%  "
                f"max err {entry.max_error * 100:6.2f}%  speedup {entry.speedup:5.2f}x"
            )
        lines.append(f"selected: {self.selected.label}")
        return "\n".join(lines)
