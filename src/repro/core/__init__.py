"""``repro.core`` — local memory-aware kernel perforation.

The package implements the paper's contribution:

* perforation schemes (:mod:`repro.core.schemes`): Rows1/Rows2/Stencil1
  plus column and random variants;
* reconstruction techniques (:mod:`repro.core.reconstruction`):
  nearest-neighbour and linear interpolation, exposed both as NumPy
  operators and as approximate *input samplers*;
* the compiler-level perforator (:mod:`repro.core.perforator`) that turns
  OpenCL C kernels into perforated + reconstructing kernels;
* the evaluation pipeline (:mod:`repro.core.pipeline`), error metrics
  (:mod:`repro.core.quality`), parameter exploration
  (:mod:`repro.core.tuning`), Pareto analysis (:mod:`repro.core.pareto`)
  and the quality-aware runtime (:mod:`repro.core.runtime`).
"""

from .config import (
    ACCURATE_CONFIG,
    ApproximationConfig,
    DEFAULT_WORK_GROUP,
    FIGURE8_CONFIGS,
    ROWS1_LI,
    ROWS1_NN,
    ROWS2_NN,
    STENCIL1_NN,
    WORK_GROUP_CANDIDATES,
    default_configurations,
)
from .errors import (
    ConfigurationError,
    PerforationError,
    QualityError,
    ReconstructionError,
    SchemeError,
    TuningError,
)
from .pareto import dominates, hypervolume_2d, is_pareto_optimal, pareto_front
from .perforator import KernelPerforator, PerforatedKernel
from .pipeline import (
    ConfigurationResult,
    DatasetResult,
    evaluate_configuration,
    evaluate_dataset,
    evaluate_many,
    timing_for,
)
from .quality import (
    ErrorMetric,
    ErrorSummary,
    compute_error,
    max_error,
    mean_error,
    mean_relative_error,
    normalized_mean_error,
    psnr,
    rmse,
)
from .reconstruction import (
    AccurateSampler,
    ApproximateInput,
    InputSampler,
    LINEAR_INTERPOLATION,
    NEAREST_NEIGHBOR,
    ColumnTileSampler,
    ReconstructedImageSampler,
    RowTileSampler,
    StencilTileSampler,
    approximate_input,
    loaded_row_indices,
    make_sampler,
    perforate,
    reconstruct_columns,
    reconstruct_mask,
    reconstruct_rows,
)
from .runtime import CalibrationEntry, ExecutionRecord, QualityAwareRuntime
from .schemes import (
    ACCURATE,
    COLS1,
    ColumnPerforation,
    PerforationScheme,
    ROWS1,
    ROWS2,
    RandomPerforation,
    RowPerforation,
    STENCIL1,
    StencilPerforation,
    available_schemes,
    get_scheme,
)
from .tuning import (
    SweepPoint,
    SweepResult,
    WorkGroupTiming,
    best_work_group,
    full_sweep,
    sweep_configurations,
    sweep_work_groups,
)

__all__ = [
    "ACCURATE",
    "ACCURATE_CONFIG",
    "AccurateSampler",
    "ApproximateInput",
    "ApproximationConfig",
    "CalibrationEntry",
    "COLS1",
    "ColumnPerforation",
    "ConfigurationError",
    "ConfigurationResult",
    "DatasetResult",
    "DEFAULT_WORK_GROUP",
    "ErrorMetric",
    "ErrorSummary",
    "ExecutionRecord",
    "FIGURE8_CONFIGS",
    "InputSampler",
    "KernelPerforator",
    "LINEAR_INTERPOLATION",
    "NEAREST_NEIGHBOR",
    "PerforatedKernel",
    "PerforationError",
    "PerforationScheme",
    "QualityAwareRuntime",
    "QualityError",
    "ColumnTileSampler",
    "ReconstructedImageSampler",
    "RowTileSampler",
    "ReconstructionError",
    "ROWS1",
    "ROWS1_LI",
    "ROWS1_NN",
    "ROWS2",
    "ROWS2_NN",
    "RandomPerforation",
    "RowPerforation",
    "STENCIL1",
    "STENCIL1_NN",
    "SchemeError",
    "StencilPerforation",
    "StencilTileSampler",
    "SweepPoint",
    "SweepResult",
    "TuningError",
    "WORK_GROUP_CANDIDATES",
    "WorkGroupTiming",
    "approximate_input",
    "available_schemes",
    "best_work_group",
    "compute_error",
    "default_configurations",
    "dominates",
    "evaluate_configuration",
    "evaluate_dataset",
    "evaluate_many",
    "full_sweep",
    "get_scheme",
    "hypervolume_2d",
    "is_pareto_optimal",
    "loaded_row_indices",
    "make_sampler",
    "max_error",
    "mean_error",
    "mean_relative_error",
    "normalized_mean_error",
    "pareto_front",
    "perforate",
    "psnr",
    "reconstruct_columns",
    "reconstruct_mask",
    "reconstruct_rows",
    "rmse",
    "sweep_configurations",
    "sweep_work_groups",
    "timing_for",
]
