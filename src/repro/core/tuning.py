"""Parameter exploration: schemes, reconstruction techniques, work-group sizes.

Section 6.3 of the paper explores two parameter axes — the perforation
scheme / reconstruction technique (Figure 8) and the local work-group size
(Figure 9) — and Section 6.4 collects the Pareto-optimal configurations
(Figure 10).  This module provides the sweep machinery behind those
experiments and is also the backend of the quality-aware runtime
(:mod:`repro.core.runtime`).
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, field
from typing import Iterable, Sequence

from ..clsim.device import Device
from .config import ApproximationConfig, WORK_GROUP_CANDIDATES
from .errors import TuningError
from .pareto import pareto_front


@dataclass(frozen=True)
class SweepPoint:
    """One evaluated configuration within a sweep."""

    config: ApproximationConfig
    error: float
    speedup: float
    runtime_s: float

    @property
    def label(self) -> str:
        return self.config.label

    def describe(self) -> str:
        return (
            f"{self.label:<14s} wg={self.config.work_group!s:<9s} "
            f"error={self.error * 100:6.2f}%  speedup={self.speedup:5.2f}x"
        )


@dataclass
class SweepResult:
    """All points of one parameter sweep for one application."""

    app_name: str
    points: list[SweepPoint] = field(default_factory=list)

    def pareto_optimal(self) -> list[SweepPoint]:
        """Pareto-optimal subset (maximise speedup, minimise error)."""
        return pareto_front(self.points)

    def best_for_error_budget(self, budget: float) -> SweepPoint:
        """Fastest configuration whose error stays within ``budget``."""
        admissible = [p for p in self.points if p.error <= budget]
        if not admissible:
            raise TuningError(
                f"no configuration of {self.app_name!r} meets the error budget "
                f"{budget:.2%} (best achievable is {min(p.error for p in self.points):.2%})"
            )
        return max(admissible, key=lambda p: p.speedup)

    def best_error(self) -> SweepPoint:
        """The most accurate configuration."""
        if not self.points:
            raise TuningError("sweep produced no points")
        return min(self.points, key=lambda p: p.error)

    def fastest(self) -> SweepPoint:
        """The fastest configuration."""
        if not self.points:
            raise TuningError("sweep produced no points")
        return max(self.points, key=lambda p: p.speedup)


def sweep_configurations(
    app,
    inputs,
    configs: Iterable[ApproximationConfig] | None = None,
    device: Device | None = None,
) -> SweepResult:
    """Evaluate a set of configurations (default: the paper's four) on one input.

    .. deprecated:: Use :meth:`repro.api.PerforationEngine.sweep` (or
        ``engine.session(app).sweep()``), which shares cached references
        and can evaluate configurations on parallel workers.
    """
    from ..api.engine import shared_engine

    warnings.warn(
        "sweep_configurations() is deprecated; use PerforationEngine.sweep() instead",
        DeprecationWarning,
        stacklevel=2,
    )
    return shared_engine(device).sweep(app, inputs, configs)


@dataclass(frozen=True)
class WorkGroupTiming:
    """Modelled runtime of one kernel variant for one work-group shape."""

    work_group: tuple[int, int]
    variant: str
    runtime_s: float


def sweep_work_groups(
    app,
    inputs,
    configs: Sequence[ApproximationConfig],
    work_groups: Sequence[tuple[int, int]] = WORK_GROUP_CANDIDATES,
    device: Device | None = None,
    include_baseline: bool = True,
) -> list[WorkGroupTiming]:
    """Runtime of each configuration for each work-group shape (Figure 9).

    Only the timing model is involved — the error does not depend on the
    work-group shape for row schemes, and only marginally for the stencil
    scheme, so the functional path is not re-run.
    """
    from ..api.engine import shared_engine

    return shared_engine(device).sweep_work_groups(
        app, inputs, list(configs), work_groups, include_baseline
    )


def best_work_group(
    app,
    inputs,
    config: ApproximationConfig,
    work_groups: Sequence[tuple[int, int]] = WORK_GROUP_CANDIDATES,
    device: Device | None = None,
) -> tuple[int, int]:
    """Work-group shape minimising the modelled runtime of ``config``.

    The paper's observation (Section 6.3) is that this optimum differs
    between the accurate baseline and the approximate kernels.
    """
    from ..api.engine import shared_engine

    return shared_engine(device).best_work_group(app, inputs, config, work_groups)


def full_sweep(
    app,
    inputs,
    configs: Iterable[ApproximationConfig] | None = None,
    work_groups: Sequence[tuple[int, int]] = WORK_GROUP_CANDIDATES,
    device: Device | None = None,
) -> SweepResult:
    """Sweep configurations *and* work-group shapes jointly.

    This is the search space the paper's envisioned auto-tuning library
    would explore; the quality-aware runtime uses it for calibration.
    """
    from ..api.engine import shared_engine

    return shared_engine(device).full_sweep(app, inputs, configs, work_groups)
