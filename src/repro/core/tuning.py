"""Parameter exploration: schemes, reconstruction techniques, work-group sizes.

Section 6.3 of the paper explores two parameter axes — the perforation
scheme / reconstruction technique (Figure 8) and the local work-group size
(Figure 9) — and Section 6.4 collects the Pareto-optimal configurations
(Figure 10).  This module provides the sweep machinery behind those
experiments and is also the backend of the quality-aware runtime
(:mod:`repro.core.runtime`).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Sequence

from ..clsim.device import Device, firepro_w5100
from .config import (
    ACCURATE_CONFIG,
    ApproximationConfig,
    WORK_GROUP_CANDIDATES,
    default_configurations,
)
from .errors import TuningError
from .pareto import pareto_front
from .pipeline import ConfigurationResult, evaluate_configuration, timing_for


@dataclass(frozen=True)
class SweepPoint:
    """One evaluated configuration within a sweep."""

    config: ApproximationConfig
    error: float
    speedup: float
    runtime_s: float

    @property
    def label(self) -> str:
        return self.config.label

    def describe(self) -> str:
        return (
            f"{self.label:<14s} wg={self.config.work_group!s:<9s} "
            f"error={self.error * 100:6.2f}%  speedup={self.speedup:5.2f}x"
        )


@dataclass
class SweepResult:
    """All points of one parameter sweep for one application."""

    app_name: str
    points: list[SweepPoint] = field(default_factory=list)

    def pareto_optimal(self) -> list[SweepPoint]:
        """Pareto-optimal subset (maximise speedup, minimise error)."""
        return pareto_front(self.points)

    def best_for_error_budget(self, budget: float) -> SweepPoint:
        """Fastest configuration whose error stays within ``budget``."""
        admissible = [p for p in self.points if p.error <= budget]
        if not admissible:
            raise TuningError(
                f"no configuration of {self.app_name!r} meets the error budget "
                f"{budget:.2%} (best achievable is {min(p.error for p in self.points):.2%})"
            )
        return max(admissible, key=lambda p: p.speedup)

    def best_error(self) -> SweepPoint:
        """The most accurate configuration."""
        if not self.points:
            raise TuningError("sweep produced no points")
        return min(self.points, key=lambda p: p.error)

    def fastest(self) -> SweepPoint:
        """The fastest configuration."""
        if not self.points:
            raise TuningError("sweep produced no points")
        return max(self.points, key=lambda p: p.speedup)


def sweep_configurations(
    app,
    inputs,
    configs: Iterable[ApproximationConfig] | None = None,
    device: Device | None = None,
) -> SweepResult:
    """Evaluate a set of configurations (default: the paper's four) on one input."""
    device = device or firepro_w5100()
    if configs is None:
        configs = default_configurations(app.halo)
    result = SweepResult(app_name=app.name)
    reference = app.reference(inputs)
    for config in configs:
        evaluation = evaluate_configuration(
            app, inputs, config, device=device, reference=reference
        )
        result.points.append(
            SweepPoint(
                config=config,
                error=evaluation.error,
                speedup=evaluation.speedup,
                runtime_s=evaluation.approx_time_s,
            )
        )
    return result


@dataclass(frozen=True)
class WorkGroupTiming:
    """Modelled runtime of one kernel variant for one work-group shape."""

    work_group: tuple[int, int]
    variant: str
    runtime_s: float


def sweep_work_groups(
    app,
    inputs,
    configs: Sequence[ApproximationConfig],
    work_groups: Sequence[tuple[int, int]] = WORK_GROUP_CANDIDATES,
    device: Device | None = None,
    include_baseline: bool = True,
) -> list[WorkGroupTiming]:
    """Runtime of each configuration for each work-group shape (Figure 9).

    Only the timing model is involved — the error does not depend on the
    work-group shape for row schemes, and only marginally for the stencil
    scheme, so the functional path is not re-run.
    """
    device = device or firepro_w5100()
    results: list[WorkGroupTiming] = []
    variants: list[tuple[str, ApproximationConfig]] = []
    if include_baseline:
        variants.append(("Baseline", ACCURATE_CONFIG))
    variants.extend((c.label, c) for c in configs)

    width, height = app.global_size(inputs)
    for label, config in variants:
        for work_group in work_groups:
            wx, wy = work_group
            if width % wx != 0 or height % wy != 0:
                continue
            if wx * wy > device.max_work_group_size:
                continue
            if config.scheme.requires_halo() and app.halo == 0:
                continue
            shaped = config.with_work_group(work_group)
            timing = timing_for(app, shaped, inputs, device=device)
            results.append(
                WorkGroupTiming(
                    work_group=work_group, variant=label, runtime_s=timing.total_time_s
                )
            )
    return results


def best_work_group(
    app,
    inputs,
    config: ApproximationConfig,
    work_groups: Sequence[tuple[int, int]] = WORK_GROUP_CANDIDATES,
    device: Device | None = None,
) -> tuple[int, int]:
    """Work-group shape minimising the modelled runtime of ``config``.

    The paper's observation (Section 6.3) is that this optimum differs
    between the accurate baseline and the approximate kernels.
    """
    timings = sweep_work_groups(
        app, inputs, [config], work_groups, device=device, include_baseline=False
    )
    if not timings:
        raise TuningError(
            f"no admissible work-group shape for {app.name!r} with {config.label}"
        )
    best = min(timings, key=lambda t: t.runtime_s)
    return best.work_group


def full_sweep(
    app,
    inputs,
    configs: Iterable[ApproximationConfig] | None = None,
    work_groups: Sequence[tuple[int, int]] = WORK_GROUP_CANDIDATES,
    device: Device | None = None,
) -> SweepResult:
    """Sweep configurations *and* work-group shapes jointly.

    This is the search space the paper's envisioned auto-tuning library
    would explore; the quality-aware runtime uses it for calibration.
    """
    device = device or firepro_w5100()
    if configs is None:
        configs = default_configurations(app.halo)
    expanded: list[ApproximationConfig] = []
    width, height = app.global_size(inputs)
    for config in configs:
        for work_group in work_groups:
            wx, wy = work_group
            if width % wx != 0 or height % wy != 0:
                continue
            if wx * wy > device.max_work_group_size:
                continue
            expanded.append(config.with_work_group(work_group))
    return sweep_configurations(app, inputs, expanded, device=device)
