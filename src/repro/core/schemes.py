"""Perforation schemes.

A *perforation scheme* decides which part of a work group's input tile is
fetched from global memory.  The paper proposes two families (Section 4.4):

* **row schemes** skip the loading of tile rows — ``Rows1`` loads every
  second row, ``Rows2`` loads one row in four;
* the **stencil scheme** (``Stencil1``) loads only the core of the tile
  and skips the halo needed by the stencil.

For completeness the module also provides column and random schemes (the
paper discusses both: columns as the Paraprox analogue that aligns badly
with the memory layout, random as the statistically ideal but
memory-unfriendly choice).

Each scheme can describe itself in two equivalent ways:

* :meth:`PerforationScheme.loaded_mask` — a boolean mask over the tile
  saying which elements are fetched (used by the NumPy fast path and by
  tests);
* :meth:`PerforationScheme.loaded_fraction` — the fraction of the tile
  fetched from DRAM (used by the analytical timing model).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..api.registry import Registry
from .errors import SchemeError

#: Scheme kinds (mirrors :mod:`repro.kernellang.transforms.perforation`).
KIND_NONE = "none"
KIND_ROWS = "rows"
KIND_COLUMNS = "columns"
KIND_STENCIL = "stencil"
KIND_RANDOM = "random"


@dataclass(frozen=True)
class PerforationScheme:
    """Base class: the identity scheme (no perforation)."""

    name: str = "accurate"

    @property
    def kind(self) -> str:
        return KIND_NONE

    # ------------------------------------------------------------------
    def loaded_mask(self, tile_h: int, tile_w: int, halo: int = 0) -> np.ndarray:
        """Boolean mask of shape (tile_h, tile_w): True where data is fetched."""
        self._validate_tile(tile_h, tile_w, halo)
        return np.ones((tile_h, tile_w), dtype=bool)

    def loaded_fraction(self, tile_h: int, tile_w: int, halo: int = 0) -> float:
        """Fraction of tile elements fetched from global memory."""
        mask = self.loaded_mask(tile_h, tile_w, halo)
        return float(mask.sum()) / mask.size

    def rows_loaded_fraction(self, tile_h: int, halo: int = 0) -> float:
        """Fraction of tile *rows* that are (at least partially) fetched."""
        mask = self.loaded_mask(tile_h, max(1, 2 * halo + 1), halo)
        return float(mask.any(axis=1).sum()) / tile_h

    def requires_halo(self) -> bool:
        """Whether the scheme only makes sense for kernels with a halo."""
        return False

    # ------------------------------------------------------------------
    @staticmethod
    def _validate_tile(tile_h: int, tile_w: int, halo: int) -> None:
        if tile_h <= 0 or tile_w <= 0:
            raise SchemeError(f"tile dimensions must be positive, got {tile_w}x{tile_h}")
        if halo < 0:
            raise SchemeError(f"halo must be non-negative, got {halo}")
        if 2 * halo >= tile_h or 2 * halo >= tile_w:
            raise SchemeError(
                f"halo {halo} is too large for a {tile_w}x{tile_h} tile"
            )

    def describe(self) -> str:
        """One-line human-readable description."""
        return f"{self.name}: no perforation"


@dataclass(frozen=True)
class RowPerforation(PerforationScheme):
    """Fetch every ``step``-th tile row; skip the others.

    ``step=2`` is the paper's *Rows1* (50% of rows skipped), ``step=4`` is
    *Rows2* (75% skipped).
    """

    step: int = 2
    name: str = ""

    def __post_init__(self) -> None:
        if self.step < 2:
            raise SchemeError("row perforation requires step >= 2")
        if not self.name:
            object.__setattr__(self, "name", f"rows{self.step // 2}")

    @property
    def kind(self) -> str:
        return KIND_ROWS

    def loaded_mask(self, tile_h: int, tile_w: int, halo: int = 0) -> np.ndarray:
        self._validate_tile(tile_h, tile_w, halo)
        mask = np.zeros((tile_h, tile_w), dtype=bool)
        mask[:: self.step, :] = True
        return mask

    def describe(self) -> str:
        return (
            f"{self.name}: fetch 1 of every {self.step} tile rows "
            f"({100.0 / self.step:.0f}% of the input)"
        )


@dataclass(frozen=True)
class ColumnPerforation(PerforationScheme):
    """Fetch every ``step``-th tile column.

    Provided for the scheme-comparison experiments: columns perforate the
    same amount of data as rows but interact badly with row-major memory
    (every fetched row segment is short), which the timing model penalises.
    """

    step: int = 2
    name: str = ""

    def __post_init__(self) -> None:
        if self.step < 2:
            raise SchemeError("column perforation requires step >= 2")
        if not self.name:
            object.__setattr__(self, "name", f"cols{self.step // 2}")

    @property
    def kind(self) -> str:
        return KIND_COLUMNS

    def loaded_mask(self, tile_h: int, tile_w: int, halo: int = 0) -> np.ndarray:
        self._validate_tile(tile_h, tile_w, halo)
        mask = np.zeros((tile_h, tile_w), dtype=bool)
        mask[:, :: self.step] = True
        return mask

    def describe(self) -> str:
        return f"{self.name}: fetch 1 of every {self.step} tile columns"


@dataclass(frozen=True)
class StencilPerforation(PerforationScheme):
    """Fetch only the tile core; skip the stencil halo (the paper's *Stencil1*)."""

    name: str = "stencil1"

    @property
    def kind(self) -> str:
        return KIND_STENCIL

    def requires_halo(self) -> bool:
        return True

    def loaded_mask(self, tile_h: int, tile_w: int, halo: int = 0) -> np.ndarray:
        self._validate_tile(tile_h, tile_w, halo)
        if halo == 0:
            raise SchemeError(
                "the stencil scheme needs a halo; 1x1 kernels (e.g. Inversion) "
                "must use a row scheme instead"
            )
        mask = np.zeros((tile_h, tile_w), dtype=bool)
        mask[halo : tile_h - halo, halo : tile_w - halo] = True
        return mask

    def describe(self) -> str:
        return f"{self.name}: fetch the tile core only, skip the halo"


@dataclass(frozen=True)
class RandomPerforation(PerforationScheme):
    """Fetch a random ``fraction`` of the tile elements.

    Statistically this distributes the error most evenly (Section 4.4), but
    every fetched element needs its own memory transaction, which the
    timing model charges accordingly — reproducing the paper's argument for
    why random schemes are not used on GPUs.
    """

    fraction: float = 0.5
    seed: int = 0
    name: str = ""

    def __post_init__(self) -> None:
        if not 0.0 < self.fraction <= 1.0:
            raise SchemeError("random perforation fraction must be in (0, 1]")
        if not self.name:
            object.__setattr__(self, "name", f"random{int(self.fraction * 100)}")

    @property
    def kind(self) -> str:
        return KIND_RANDOM

    def loaded_mask(self, tile_h: int, tile_w: int, halo: int = 0) -> np.ndarray:
        self._validate_tile(tile_h, tile_w, halo)
        rng = np.random.default_rng(self.seed + tile_h * 1000 + tile_w)
        mask = rng.random((tile_h, tile_w)) < self.fraction
        # Guarantee at least one loaded element so reconstruction is defined.
        if not mask.any():
            mask[tile_h // 2, tile_w // 2] = True
        return mask

    def describe(self) -> str:
        return f"{self.name}: fetch a random {self.fraction:.0%} of the tile"


# ---------------------------------------------------------------------------
# Canonical scheme instances used throughout the experiments.
# ---------------------------------------------------------------------------
ACCURATE = PerforationScheme()
ROWS1 = RowPerforation(step=2)
ROWS2 = RowPerforation(step=4)
COLS1 = ColumnPerforation(step=2)
STENCIL1 = StencilPerforation()

#: Registry of canonical scheme instances.  Custom schemes can be added
#: with :func:`register_scheme` and are then resolvable by name wherever a
#: scheme is accepted (e.g. when building configurations for a session).
SCHEMES: Registry[PerforationScheme] = Registry("scheme", error=SchemeError)

for _scheme in (ACCURATE, ROWS1, ROWS2, COLS1, STENCIL1):
    SCHEMES.register(_scheme.name, _scheme)


def register_scheme(
    scheme: PerforationScheme | None = None, *, name: str | None = None, overwrite: bool = False
):
    """Register a scheme instance under its ``name`` (or an explicit one)."""
    if scheme is None:
        if name is None:
            raise ValueError("register_scheme needs a scheme or a name")
        return SCHEMES.register(name, overwrite=overwrite)
    return SCHEMES.register(name or scheme.name, scheme, overwrite=overwrite)


def available_schemes() -> list[str]:
    """Names of the registered schemes."""
    return SCHEMES.names()


def get_scheme(name: str) -> PerforationScheme:
    """Look up a registered scheme by name."""
    return SCHEMES.get(name)
