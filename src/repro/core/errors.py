"""Exceptions raised by the kernel-perforation core."""

from __future__ import annotations


class PerforationError(Exception):
    """Base class for errors raised by :mod:`repro.core`."""


class SchemeError(PerforationError):
    """Raised for invalid perforation-scheme parameters or usage."""


class ReconstructionError(PerforationError):
    """Raised for invalid reconstruction parameters or inputs."""


class ConfigurationError(PerforationError):
    """Raised when an approximation configuration is inconsistent
    (e.g. stencil perforation requested for a 1x1 kernel)."""


class QualityError(PerforationError):
    """Raised for invalid error-metric computations."""


class TuningError(PerforationError):
    """Raised by the parameter-exploration and runtime components."""
