"""Approximation configurations.

A configuration bundles the three knobs the paper explores (Section 6.3):
the perforation scheme, the reconstruction technique, and the work-group
size.  The canonical configurations of the evaluation (``Rows1:NN``,
``Rows2:NN``, ``Rows1:LI``, ``Stencil1:NN``) are provided as constants.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from .errors import ConfigurationError
from .reconstruction import (
    LINEAR_INTERPOLATION,
    NEAREST_NEIGHBOR,
    TECHNIQUE_LABELS,
    TECHNIQUES,
)
from .schemes import (
    ACCURATE,
    KIND_NONE,
    KIND_STENCIL,
    ROWS1,
    ROWS2,
    STENCIL1,
    PerforationScheme,
)

#: The ten work-group shapes compared in Figure 9 of the paper.
WORK_GROUP_CANDIDATES: tuple[tuple[int, int], ...] = (
    (2, 128),
    (4, 64),
    (8, 8),
    (8, 16),
    (8, 32),
    (16, 8),
    (16, 16),
    (32, 8),
    (64, 4),
    (128, 2),
)

#: Default work-group shape used when none is specified.
DEFAULT_WORK_GROUP: tuple[int, int] = (16, 16)


@dataclass(frozen=True)
class ApproximationConfig:
    """One point in the paper's parameter space."""

    scheme: PerforationScheme = ACCURATE
    reconstruction: str = NEAREST_NEIGHBOR
    work_group: tuple[int, int] = DEFAULT_WORK_GROUP

    def __post_init__(self) -> None:
        if self.reconstruction not in TECHNIQUES:
            raise ConfigurationError(
                f"unknown reconstruction technique {self.reconstruction!r}"
            )
        wx, wy = self.work_group
        if wx <= 0 or wy <= 0:
            raise ConfigurationError(
                f"work-group dimensions must be positive, got {self.work_group}"
            )

    # ------------------------------------------------------------------
    @property
    def is_accurate(self) -> bool:
        """Whether this configuration performs no approximation."""
        return self.scheme.kind == KIND_NONE

    @property
    def label(self) -> str:
        """Figure-style label such as ``Rows1:NN`` or ``Stencil1:NN``."""
        if self.is_accurate:
            return "Accurate"
        scheme = self.scheme.name.capitalize()
        if self.scheme.kind == KIND_STENCIL:
            # The paper always reconstructs the stencil scheme with NN.
            return f"{scheme}:NN"
        return f"{scheme}:{TECHNIQUE_LABELS[self.reconstruction]}"

    @property
    def key(self) -> str:
        """Deterministic *identity* string of this configuration.

        Unlike :attr:`label` (a figure caption that collapses work-group
        shapes, reconstruction-invariant schemes and scheme parameters)
        this distinguishes every distinct configuration: the scheme repr
        carries all scheme parameters (step, fraction, seed, ...).  Used
        wherever configurations key dictionaries — calibration buckets,
        tuner memoization, search-space dedup."""
        wx, wy = self.work_group
        return f"{self.scheme!r}|{self.reconstruction}@{wx}x{wy}"

    def with_work_group(self, work_group: tuple[int, int]) -> "ApproximationConfig":
        """Copy of this configuration with a different work-group shape."""
        return replace(self, work_group=work_group)

    def validate_for_halo(self, halo: int) -> None:
        """Check applicability to a kernel with the given stencil halo.

        The stencil scheme perforates the halo, so it cannot be applied to
        1x1 kernels (the paper makes the same restriction for Inversion).
        """
        if self.scheme.requires_halo() and halo == 0:
            raise ConfigurationError(
                f"configuration {self.label} requires a stencil halo but the kernel has none"
            )

    def describe(self) -> str:
        wx, wy = self.work_group
        return f"{self.label} @ work group {wx}x{wy} ({self.scheme.describe()})"


# ---------------------------------------------------------------------------
# Canonical configurations (Figure 8 / Figure 10).
# ---------------------------------------------------------------------------
ACCURATE_CONFIG = ApproximationConfig(scheme=ACCURATE)
ROWS1_NN = ApproximationConfig(scheme=ROWS1, reconstruction=NEAREST_NEIGHBOR)
ROWS2_NN = ApproximationConfig(scheme=ROWS2, reconstruction=NEAREST_NEIGHBOR)
ROWS1_LI = ApproximationConfig(scheme=ROWS1, reconstruction=LINEAR_INTERPOLATION)
STENCIL1_NN = ApproximationConfig(scheme=STENCIL1, reconstruction=NEAREST_NEIGHBOR)

#: The four configurations compared in Figure 8.
FIGURE8_CONFIGS: tuple[ApproximationConfig, ...] = (
    ROWS1_NN,
    ROWS2_NN,
    ROWS1_LI,
    STENCIL1_NN,
)


def default_configurations(halo: int) -> list[ApproximationConfig]:
    """The paper's configurations applicable to a kernel with ``halo``.

    Kernels without a halo (1x1 filters) cannot use the stencil scheme.
    """
    configs = [ROWS1_NN, ROWS2_NN, ROWS1_LI]
    if halo > 0:
        configs.append(STENCIL1_NN)
    return configs
