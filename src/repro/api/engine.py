"""The :class:`PerforationEngine` facade.

The engine is the single entry point to the reproduction library: it owns
the simulated :class:`~repro.clsim.device.Device`, the analytical
:class:`~repro.clsim.timing.TimingModel`, a memoization cache for reference
outputs and timing estimates (:mod:`repro.api.cache`) and an optional
``concurrent.futures`` worker pool for parallel sweeps and dataset
evaluation.  Applications, device profiles and perforation schemes are
resolved by name through the package registries, so

.. code-block:: python

    from repro.api import PerforationEngine

    engine = PerforationEngine(device="firepro-w5100", workers=4)
    sweep = engine.session(app="gaussian").sweep()
    tuned = engine.session(app="sobel3").autotune(error_budget=0.01)
    record = tuned.run(image)

works without importing a single application class.  The legacy free
functions (:func:`repro.core.pipeline.evaluate_configuration` and friends)
are deprecation shims over a per-call engine.
"""

from __future__ import annotations

import os
import threading
from concurrent.futures import ThreadPoolExecutor
from typing import Callable, Iterable, Sequence, TypeVar

import numpy as np

from ..clsim.backends import ExecutionBackend, resolve_backend
from ..clsim.device import Device, get_device
from ..clsim.executor import ExecutionStats, Executor
from ..clsim.ndrange import NDRange
from ..clsim.timing import TimingBreakdown, TimingModel
from ..core.config import (
    ACCURATE_CONFIG,
    ApproximationConfig,
    WORK_GROUP_CANDIDATES,
    default_configurations,
)
from ..core.errors import ConfigurationError, TuningError
from ..core.pipeline import (
    ConfigurationResult,
    DatasetResult,
    baseline_config_for,
)
from ..core.quality import ErrorSummary, compute_error
from ..core.tuning import SweepPoint, SweepResult, WorkGroupTiming
from ..obs.trace import get_tracer
from .cache import CacheStats, ResultCache

T = TypeVar("T")
R = TypeVar("R")

#: Cap applied to ``workers="auto"`` so small machines are not oversubscribed.
AUTO_WORKER_CAP = 8


def _auto_workers() -> int:
    return max(1, min(AUTO_WORKER_CAP, os.cpu_count() or 1))


class PerforationEngine:
    """Session factory and evaluation backend for kernel perforation.

    Parameters
    ----------
    device:
        A :class:`Device`, a registered profile name (see
        :func:`repro.clsim.device.available_devices`), or ``None`` for the
        paper's FirePro W5100 profile.
    workers:
        Size of the worker pool used for sweeps and dataset evaluation.
        ``1`` (the default) evaluates serially, ``"auto"`` sizes the pool
        from the CPU count.  Parallel results are bit-for-bit identical to
        serial ones — every evaluation is a pure function of its inputs.
    cache:
        ``True`` (default) for a fresh :class:`ResultCache`, ``False`` to
        disable memoization entirely, or a ready-made :class:`ResultCache`
        to share between engines.
    backend:
        Execution backend used by the *compiled* kernel path
        (:meth:`run_compiled` / :meth:`compiled_sweep`): a registered name
        (``"interpreter"``, ``"vectorized"``, ``"codegen"``), an
        :class:`~repro.clsim.backends.ExecutionBackend` instance, or
        ``None`` for the default interpreter backend.  Sessions can
        override it per session.  The compiled backends share one lowering
        pipeline (see ``docs/backends.md`` and ``docs/ir.md``), so outputs
        and stats are bit-identical across all three.
    """

    def __init__(
        self,
        device: Device | str | None = None,
        workers: int | str = 1,
        cache: bool | ResultCache = True,
        backend: "ExecutionBackend | str | None" = None,
    ) -> None:
        if device is None:
            device = get_device()
        elif isinstance(device, str):
            device = get_device(device)
        self.device = device
        # Resolve eagerly so unknown backend names fail at construction.
        self.backend = resolve_backend(backend)
        self.timing_model = TimingModel(device)
        if isinstance(cache, ResultCache):
            self.cache: ResultCache | None = cache
        else:
            self.cache = ResultCache() if cache else None
        if workers == "auto":
            workers = _auto_workers()
        if not isinstance(workers, int) or workers < 1:
            raise ValueError(f"workers must be a positive integer or 'auto', got {workers!r}")
        self.workers = workers
        self._pool: ThreadPoolExecutor | None = None
        self._closed = False
        self._apps: dict[str, object] = {}

    # ------------------------------------------------------------------
    # Resolution and bookkeeping
    # ------------------------------------------------------------------
    def resolve_app(self, app):
        """Resolve an application by registry name (instances pass through)."""
        if isinstance(app, str):
            cached = self._apps.get(app)
            if cached is None:
                from ..apps import get_application

                cached = self._apps[app] = get_application(app)
            return cached
        return app

    @property
    def cache_stats(self) -> CacheStats:
        """Hit/miss counters of the memoization cache."""
        return self.cache.stats if self.cache is not None else CacheStats()

    def clear_cache(self) -> None:
        if self.cache is not None:
            self.cache.clear()

    # ------------------------------------------------------------------
    # Worker pool
    # ------------------------------------------------------------------
    def _map(self, fn: Callable[[T], R], items: Sequence[T]) -> list[R]:
        """Order-preserving map over the worker pool (serial when workers=1)."""
        if self.workers <= 1 or self._closed or len(items) <= 1:
            return [fn(item) for item in items]
        if self._pool is None:
            self._pool = ThreadPoolExecutor(
                max_workers=self.workers, thread_name_prefix="perforation-engine"
            )
        return list(self._pool.map(fn, items))

    def close(self) -> None:
        """Shut down the worker pool; subsequent calls evaluate serially."""
        self._closed = True
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None

    def __enter__(self) -> "PerforationEngine":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    @staticmethod
    def _app_cache_key(app) -> str:
        """Cache key of an application: class identity plus name.

        Keying by class (not just ``app.name``) keeps a subclass that
        overrides ``reference``/``profile`` without renaming itself from
        aliasing the stock application's cached results.  Instances of the
        same class still share entries — applications are stateless.
        """
        cls = type(app)
        return f"{cls.__module__}.{cls.__qualname__}:{app.name}"

    # ------------------------------------------------------------------
    # Cached primitives
    # ------------------------------------------------------------------
    def reference(self, app, inputs) -> np.ndarray:
        """Accurate output of ``app`` for ``inputs`` (memoized by content).

        The returned array is shared with the cache and marked read-only;
        ``.copy()`` it before mutating.
        """
        app = self.resolve_app(app)
        if self.cache is None:
            return app.reference(inputs)
        return self.cache.reference(
            self._app_cache_key(app), inputs, lambda: app.reference(inputs)
        )

    def timing(
        self, app, config: ApproximationConfig, global_size: tuple[int, int]
    ) -> TimingBreakdown:
        """Modelled timing of ``app`` under ``config`` (memoized)."""
        app = self.resolve_app(app)

        def compute() -> TimingBreakdown:
            profile, ndrange = app.profile(config, global_size)
            return self.timing_model.estimate(profile, ndrange)

        if self.cache is None:
            return compute()
        return self.cache.timing(
            (self._app_cache_key(app), config, global_size), compute
        )

    def baseline_timing(self, app, global_size: tuple[int, int]) -> TimingBreakdown:
        """Timing of the accurate baseline the speedups are measured against."""
        app = self.resolve_app(app)
        return self.timing(app, baseline_config_for(app), global_size)

    # ------------------------------------------------------------------
    # Evaluation
    # ------------------------------------------------------------------
    def evaluate(
        self,
        app,
        inputs,
        config: ApproximationConfig,
        reference: np.ndarray | None = None,
    ) -> ConfigurationResult:
        """Full pipeline of the paper's Figure 1b for one configuration."""
        app = self.resolve_app(app)
        config.validate_for_halo(app.halo)

        if reference is None:
            reference = self.reference(app, inputs)
        approximate = app.approximate(inputs, config)
        error = compute_error(reference, approximate, app.error_metric)

        global_size = app.global_size(inputs)
        baseline_timing = self.baseline_timing(app, global_size)
        approx_timing = self.timing(app, config, global_size)

        return ConfigurationResult(
            app_name=app.name,
            config=config,
            error=error,
            baseline_time_s=baseline_timing.total_time_s,
            approx_time_s=approx_timing.total_time_s,
            baseline_timing=baseline_timing,
            approx_timing=approx_timing,
        )

    def evaluate_many(
        self, app, inputs, configs: Iterable[ApproximationConfig]
    ) -> list[ConfigurationResult]:
        """Evaluate several configurations on one input (shared reference)."""
        app = self.resolve_app(app)
        configs = list(configs)
        reference = self.reference(app, inputs)
        return self._map(
            lambda config: self.evaluate(app, inputs, config, reference=reference),
            configs,
        )

    def evaluate_dataset(
        self, app, dataset: Sequence, config: ApproximationConfig
    ) -> DatasetResult:
        """One configuration over a whole dataset (parallel over inputs).

        ``dataset`` may be any sequence of inputs, including a NumPy array
        whose first axis indexes the inputs.
        """
        if len(dataset) == 0:
            raise ConfigurationError("dataset must contain at least one input")
        app = self.resolve_app(app)
        config.validate_for_halo(app.halo)

        def one(inputs) -> float:
            reference = self.reference(app, inputs)
            approximate = app.approximate(inputs, config)
            return compute_error(reference, approximate, app.error_metric)

        errors = self._map(one, list(dataset))

        global_size = app.global_size(dataset[0])
        baseline_time = self.baseline_timing(app, global_size).total_time_s
        approx_time = self.timing(app, config, global_size).total_time_s

        return DatasetResult(
            app_name=app.name,
            config=config,
            errors=tuple(errors),
            summary=ErrorSummary.from_errors(errors),
            speedup=baseline_time / approx_time,
            baseline_time_s=baseline_time,
            approx_time_s=approx_time,
        )

    # ------------------------------------------------------------------
    # Compiler path (simulated execution of the transformed kernels)
    # ------------------------------------------------------------------
    def executor(self, backend: ExecutionBackend | str | None = None) -> Executor:
        """A :class:`~repro.clsim.executor.Executor` on this engine's device.

        ``backend`` overrides the engine's execution backend for this
        executor only.
        """
        return Executor(
            self.device, resolve_backend(backend) if backend is not None else self.backend
        )

    def run_compiled(
        self,
        app,
        inputs,
        config: ApproximationConfig | None = None,
        backend: ExecutionBackend | str | None = None,
        with_stats: bool = False,
    ):
        """Run the *compiled* (perforated) kernel on the simulated device.

        This is the paper's compiler path — kernellang passes plus
        functional execution — as opposed to the NumPy fast path used by
        :meth:`evaluate`.  The selected execution backend decides how fast
        the simulation itself runs; outputs and access counters are
        backend-independent (see the cross-backend conformance suite).

        Returns the output array, or ``(output, stats)`` with
        ``with_stats=True``.
        """
        app = self.resolve_app(app)
        if config is None:
            config = ACCURATE_CONFIG
        config.validate_for_halo(app.halo)
        perforator = app.perforator()
        perforated = (
            perforator.accurate() if config.is_accurate else perforator.perforate(config)
        )
        kernel = perforated.executable()
        width, height = app.global_size(inputs)
        output = app.output_buffer(inputs)
        args = app.kernel_args(inputs, output)
        stats: ExecutionStats = self.executor(backend).run(
            kernel, NDRange((width, height), config.work_group), args
        )
        if with_stats:
            return output.array, stats
        return output.array

    def run_compiled_batch(
        self,
        app,
        inputs_batch: Sequence,
        config: ApproximationConfig | None = None,
        backend: ExecutionBackend | str | None = None,
        with_stats: bool = False,
    ):
        """Run the compiled kernel for several inputs as one micro-batched launch.

        All inputs must have the same global size; the kernel is perforated
        and compiled once, and on a backend that supports batching (the
        vectorized and codegen backends) every work group executes the
        stacked lanes of all requests together via the batching transform
        (:mod:`repro.kernellang.passes.batching`) — the serving
        subsystem's fast path.  Outputs
        are bit-identical to per-input :meth:`run_compiled` calls, and the
        stats (with ``with_stats=True``) equal the sum of the individual
        launches' stats.

        Returns the list of output arrays (request order), or
        ``(outputs, stats)`` with ``with_stats=True``.
        """
        app = self.resolve_app(app)
        if config is None:
            config = ACCURATE_CONFIG
        config.validate_for_halo(app.halo)
        inputs_batch = list(inputs_batch)
        if not inputs_batch:
            raise ConfigurationError("batched launch requires at least one input")
        global_size = app.global_size(inputs_batch[0])
        for inputs in inputs_batch[1:]:
            if app.global_size(inputs) != global_size:
                raise ConfigurationError(
                    f"batched launch requires identically sized inputs "
                    f"(got {app.global_size(inputs)} vs {global_size})"
                )
        perforator = app.perforator()
        perforated = (
            perforator.accurate() if config.is_accurate else perforator.perforate(config)
        )
        kernel = perforated.executable()
        width, height = global_size
        outputs = [app.output_buffer(inputs) for inputs in inputs_batch]
        args_batch = [
            app.kernel_args(inputs, output)
            for inputs, output in zip(inputs_batch, outputs)
        ]
        stats: ExecutionStats = self.executor(backend).run_batch(
            kernel, NDRange((width, height), config.work_group), args_batch
        )
        arrays = [output.array for output in outputs]
        if with_stats:
            return arrays, stats
        return arrays

    def compiled_sweep(
        self,
        app,
        inputs,
        configs: Iterable[ApproximationConfig] | None = None,
        backend: ExecutionBackend | str | None = None,
    ) -> dict[str, np.ndarray]:
        """Run the compiled kernel for each configuration (default: the
        paper's four), returning outputs keyed by configuration label.

        Evaluations are independent and run on the worker pool.
        """
        app = self.resolve_app(app)
        if configs is None:
            configs = default_configurations(app.halo)
        configs = list(configs)
        labels = [config.label for config in configs]
        if len(set(labels)) != len(labels):
            raise ConfigurationError(
                "compiled_sweep configurations must have distinct labels "
                f"(got {labels}); differentiate the configs or run them "
                "individually via run_compiled()"
            )
        outputs = self._map(
            lambda config: self.run_compiled(app, inputs, config, backend=backend),
            configs,
        )
        return {config.label: output for config, output in zip(configs, outputs)}

    # ------------------------------------------------------------------
    # Sweeps
    # ------------------------------------------------------------------
    def sweep(
        self,
        app,
        inputs,
        configs: Iterable[ApproximationConfig] | None = None,
    ) -> SweepResult:
        """Evaluate a set of configurations (default: the paper's four).

        The accurate reference is computed once per input and shared by all
        workers; point order follows configuration order regardless of the
        worker count.
        """
        app = self.resolve_app(app)
        if configs is None:
            configs = default_configurations(app.halo)
        configs = list(configs)
        with get_tracer().span(
            "engine.sweep", category="calibrate", app=app.name, configs=len(configs)
        ):
            evaluations = self.evaluate_many(app, inputs, configs)
        result = SweepResult(app_name=app.name)
        result.points.extend(
            SweepPoint(
                config=evaluation.config,
                error=evaluation.error,
                speedup=evaluation.speedup,
                runtime_s=evaluation.approx_time_s,
            )
            for evaluation in evaluations
        )
        return result

    def full_sweep(
        self,
        app,
        inputs,
        configs: Iterable[ApproximationConfig] | None = None,
        work_groups: Sequence[tuple[int, int]] = WORK_GROUP_CANDIDATES,
    ) -> SweepResult:
        """Sweep configurations *and* work-group shapes jointly."""
        app = self.resolve_app(app)
        if configs is None:
            configs = default_configurations(app.halo)
        width, height = app.global_size(inputs)
        expanded = [
            config.with_work_group(work_group)
            for config in configs
            for work_group in work_groups
            if width % work_group[0] == 0
            and height % work_group[1] == 0
            and work_group[0] * work_group[1] <= self.device.max_work_group_size
        ]
        return self.sweep(app, inputs, expanded)

    def sweep_work_groups(
        self,
        app,
        inputs,
        configs: Sequence[ApproximationConfig],
        work_groups: Sequence[tuple[int, int]] = WORK_GROUP_CANDIDATES,
        include_baseline: bool = True,
    ) -> list[WorkGroupTiming]:
        """Timing of each configuration for each work-group shape (Figure 9).

        Only the timing model runs — the error does not depend on the
        work-group shape for row schemes — so this sweep is always serial;
        the cached timings make it cheap.
        """
        app = self.resolve_app(app)
        variants: list[tuple[str, ApproximationConfig]] = []
        if include_baseline:
            variants.append(("Baseline", ACCURATE_CONFIG))
        variants.extend((config.label, config) for config in configs)

        width, height = app.global_size(inputs)
        results: list[WorkGroupTiming] = []
        for label, config in variants:
            for work_group in work_groups:
                wx, wy = work_group
                if width % wx != 0 or height % wy != 0:
                    continue
                if wx * wy > self.device.max_work_group_size:
                    continue
                if config.scheme.requires_halo() and app.halo == 0:
                    continue
                shaped = config.with_work_group(work_group)
                timing = self.timing(app, shaped, (width, height))
                results.append(
                    WorkGroupTiming(
                        work_group=work_group, variant=label, runtime_s=timing.total_time_s
                    )
                )
        return results

    def best_work_group(
        self,
        app,
        inputs,
        config: ApproximationConfig,
        work_groups: Sequence[tuple[int, int]] = WORK_GROUP_CANDIDATES,
    ) -> tuple[int, int]:
        """Work-group shape minimising the modelled runtime of ``config``."""
        app = self.resolve_app(app)
        timings = self.sweep_work_groups(
            app, inputs, [config], work_groups, include_baseline=False
        )
        if not timings:
            raise TuningError(
                f"no admissible work-group shape for {app.name!r} with {config.label}"
            )
        return min(timings, key=lambda t: t.runtime_s).work_group

    # ------------------------------------------------------------------
    # Sessions
    # ------------------------------------------------------------------
    def session(
        self,
        app,
        *,
        configs: Iterable[ApproximationConfig] | None = None,
        inputs=None,
        error_budget: float | None = None,
        safety_margin: float = 0.25,
        backend: ExecutionBackend | str | None = None,
    ):
        """Open a fluent :class:`~repro.api.session.Session` for one application.

        ``app`` is an :class:`~repro.apps.base.Application` instance or a
        registered name (``"gaussian"``, ``"sobel3"``, ...).  ``backend``
        overrides the engine's execution backend for this session's
        compiled-kernel runs.
        """
        from .session import Session

        return Session(
            engine=self,
            app=self.resolve_app(app),
            configs=configs,
            inputs=inputs,
            error_budget=error_budget,
            safety_margin=safety_margin,
            backend=backend,
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"<PerforationEngine device={self.device.name!r} workers={self.workers} "
            f"cache={'on' if self.cache is not None else 'off'} "
            f"backend={self.backend.name!r}>"
        )


# ---------------------------------------------------------------------------
# Shared engines for the legacy free-function shims
# ---------------------------------------------------------------------------
_shared_engines: dict[Device, PerforationEngine] = {}
_shared_lock = threading.Lock()


def shared_engine(device: Device | str | None = None) -> PerforationEngine:
    """A process-wide serial engine per device value.

    The deprecated free functions (:func:`repro.core.pipeline.evaluate_configuration`
    and friends) route through this helper so that repeated calls against
    the same device still benefit from the reference/timing cache.
    :class:`Device` is a frozen value type, so equal devices share an engine.
    """
    if device is None:
        device = get_device()
    elif isinstance(device, str):
        device = get_device(device)
    with _shared_lock:
        engine = _shared_engines.get(device)
        if engine is None:
            engine = _shared_engines[device] = PerforationEngine(device=device)
        return engine
