"""String-keyed registries for the session API.

A :class:`Registry` maps names to factories (or ready-made objects) so the
engine can resolve applications, device profiles and perforation schemes by
name — ``engine.session(app="gaussian")`` — and so third-party code can add
its own entries without editing the package:

.. code-block:: python

    from repro.apps import register_application

    @register_application("my-filter")
    class MyFilterApp(Application):
        ...

The registry is deliberately dumb: it knows nothing about what it stores.
The owning modules (:mod:`repro.apps`, :mod:`repro.clsim.device`,
:mod:`repro.core.schemes`) decide whether entries are factories that are
called on lookup or singletons that are returned as-is.
"""

from __future__ import annotations

import threading
from typing import Generic, Iterator, TypeVar

T = TypeVar("T")


class RegistryError(KeyError):
    """Lookup of an unknown registry entry."""


class Registry(Generic[T]):
    """A thread-safe, string-keyed collection of named entries.

    Parameters
    ----------
    kind:
        Human-readable description of what is stored (``"application"``,
        ``"device profile"``, ...); used in error messages.
    error:
        Exception class raised for unknown names.  Must accept a single
        message argument (:class:`RegistryError` by default).
    """

    def __init__(self, kind: str, error: type[Exception] = RegistryError) -> None:
        self.kind = kind
        self.error = error
        self._entries: dict[str, T] = {}
        self._lock = threading.Lock()

    # ------------------------------------------------------------------
    def register(self, name: str, entry: T | None = None, *, overwrite: bool = False):
        """Register ``entry`` under ``name``.

        Usable directly (``registry.register("x", factory)``) or as a
        decorator (``@registry.register("x")``).  Registering an existing
        name raises ``ValueError`` unless ``overwrite=True``.
        """
        if not name or not isinstance(name, str):
            raise ValueError(f"{self.kind} name must be a non-empty string, got {name!r}")

        def _add(value: T) -> T:
            with self._lock:
                if not overwrite and name in self._entries:
                    raise ValueError(
                        f"{self.kind} {name!r} is already registered; "
                        f"pass overwrite=True to replace it"
                    )
                self._entries[name] = value
            return value

        if entry is None:
            return _add  # decorator form
        return _add(entry)

    def unregister(self, name: str) -> None:
        """Remove ``name`` from the registry (missing names are ignored)."""
        with self._lock:
            self._entries.pop(name, None)

    # ------------------------------------------------------------------
    def get(self, name: str) -> T:
        """Return the entry registered under ``name``."""
        with self._lock:
            try:
                return self._entries[name]
            except KeyError:
                available = sorted(self._entries)
        raise self.error(f"unknown {self.kind} {name!r}; available: {available}")

    def names(self) -> list[str]:
        """Sorted names of all registered entries."""
        with self._lock:
            return sorted(self._entries)

    # ------------------------------------------------------------------
    def __contains__(self, name: object) -> bool:
        with self._lock:
            return name in self._entries

    def __iter__(self) -> Iterator[str]:
        return iter(self.names())

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<Registry of {len(self)} {self.kind}s: {', '.join(self.names())}>"
