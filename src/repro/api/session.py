"""Fluent per-application sessions.

A :class:`Session` binds a :class:`~repro.api.engine.PerforationEngine` to
one application and exposes the evaluation, sweep and auto-tuning surface
as a fluent API:

.. code-block:: python

    engine = PerforationEngine(workers=4)

    sweep = engine.session(app="gaussian").sweep()          # paper's 4 configs
    front = sweep.pareto_optimal()

    tuned = engine.session(app="sobel3").autotune(error_budget=0.01)
    record = tuned.run(image, monitor=True)                  # quality-aware exec

The auto-tuning half subsumes the legacy
:class:`repro.core.runtime.QualityAwareRuntime` (now a deprecation shim
over this class): *calibrate* on representative inputs, *select* the
fastest configuration expected to meet the error budget, *run* new inputs
with it, optionally monitoring the achieved quality and demoting the
configuration when the budget is violated.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Iterable, Sequence

import numpy as np

from ..clsim.backends import resolve_backend
from ..obs.trace import get_tracer
from ..core.config import ACCURATE_CONFIG, ApproximationConfig, WORK_GROUP_CANDIDATES
from ..core.errors import TuningError
from ..core.pipeline import ConfigurationResult, DatasetResult, baseline_config_for
from ..core.quality import compute_error
from ..core.tuning import SweepResult, WorkGroupTiming


def _resolve_session_backend(backend):
    """Normalise a session backend selection (``None`` defers to the engine)."""
    return None if backend is None else resolve_backend(backend)


@dataclass(frozen=True)
class CalibrationEntry:
    """Calibrated statistics of one configuration."""

    config: ApproximationConfig
    mean_error: float
    max_error: float
    speedup: float

    def admissible(self, budget: float, safety_margin: float) -> bool:
        """Whether this configuration is expected to meet ``budget``."""
        return self.mean_error * (1.0 + safety_margin) <= budget


@dataclass
class ExecutionRecord:
    """Outcome of one monitored execution."""

    config: ApproximationConfig
    error: float | None
    within_budget: bool
    output: np.ndarray


class Session:
    """Evaluation session of one application on one engine.

    Created via :meth:`PerforationEngine.session`; all heavy lifting —
    caching, worker parallelism, timing — happens in the engine, so any
    number of sessions can share one engine (and its caches).
    """

    def __init__(
        self,
        engine,
        app,
        configs: Iterable[ApproximationConfig] | None = None,
        inputs=None,
        error_budget: float | None = None,
        safety_margin: float = 0.25,
        backend=None,
    ) -> None:
        self.engine = engine
        self.app = app
        self.configs = list(configs) if configs is not None else None
        self.inputs = inputs
        self.error_budget = error_budget
        self.safety_margin = safety_margin
        #: Execution backend for compiled-kernel runs; ``None`` defers to
        #: the engine's backend.  Resolved eagerly so unknown backend names
        #: fail here rather than deep inside the first run_compiled().
        self.backend = _resolve_session_backend(backend)
        self.calibration: list[CalibrationEntry] = []
        self.selected: ApproximationConfig = ACCURATE_CONFIG
        self.history: list[ExecutionRecord] = []

    # ------------------------------------------------------------------
    # Fluent configuration
    # ------------------------------------------------------------------
    def with_inputs(self, inputs) -> "Session":
        """Set the default inputs used by :meth:`sweep` and :meth:`autotune`."""
        self.inputs = inputs
        return self

    def with_configs(self, configs: Iterable[ApproximationConfig]) -> "Session":
        """Restrict the candidate configurations explored by this session."""
        self.configs = list(configs)
        return self

    def with_error_budget(self, budget: float) -> "Session":
        self.error_budget = budget
        return self

    def with_backend(self, backend) -> "Session":
        """Select the execution backend for this session's compiled runs."""
        self.backend = _resolve_session_backend(backend)
        return self

    # ------------------------------------------------------------------
    def default_inputs(self):
        """The inputs this session evaluates on when none are passed.

        Resolves (and caches) the representative sample input when the
        caller never supplied any; the autotuner uses this to tune on the
        exact input calibration would have used.
        """
        return self._inputs_or_default(None)

    def _inputs_or_default(self, inputs):
        if inputs is not None:
            return inputs
        if self.inputs is not None:
            return self.inputs
        self.inputs = self._sample_inputs()
        return self.inputs

    def _sample_inputs(self):
        """A representative input when the caller supplied none."""
        from ..data import hotspot_single, single_image
        from ..data.images import ImageClass

        if self.app.name == "hotspot":
            return hotspot_single(size=256, seed=42)
        try:
            return single_image(ImageClass.NATURAL, size=256, seed=42)
        except Exception as exc:  # pragma: no cover - defensive
            raise TuningError(
                f"no default inputs available for {self.app.name!r}; "
                f"pass inputs explicitly (session.with_inputs(...) or sweep(inputs))"
            ) from exc

    # ------------------------------------------------------------------
    # Evaluation and sweeps (delegating to the engine)
    # ------------------------------------------------------------------
    def evaluate(self, inputs, config: ApproximationConfig) -> ConfigurationResult:
        return self.engine.evaluate(self.app, inputs, config)

    def run_compiled(
        self,
        inputs=None,
        config: ApproximationConfig | None = None,
        with_stats: bool = False,
    ):
        """Run the compiled (perforated) kernel on the simulated device.

        Uses the session's selected configuration when ``config`` is not
        given (the accurate kernel before :meth:`autotune` was called), and
        the session's execution backend (falling back to the engine's).
        """
        inputs = self._inputs_or_default(inputs)
        if config is None:
            config = self.selected
        return self.engine.run_compiled(
            self.app, inputs, config, backend=self.backend, with_stats=with_stats
        )

    def run_compiled_batch(
        self,
        inputs_batch: Sequence,
        config: ApproximationConfig | None = None,
        with_stats: bool = False,
    ):
        """Micro-batched compiled run of several same-sized inputs.

        Uses the session's selected configuration when ``config`` is not
        given, and the session's execution backend (falling back to the
        engine's).  See :meth:`PerforationEngine.run_compiled_batch`.
        """
        if config is None:
            config = self.selected
        return self.engine.run_compiled_batch(
            self.app, inputs_batch, config, backend=self.backend, with_stats=with_stats
        )

    def evaluate_many(
        self, inputs, configs: Iterable[ApproximationConfig]
    ) -> list[ConfigurationResult]:
        return self.engine.evaluate_many(self.app, inputs, configs)

    def evaluate_dataset(
        self, dataset: Sequence, config: ApproximationConfig
    ) -> DatasetResult:
        return self.engine.evaluate_dataset(self.app, dataset, config)

    def sweep(
        self,
        inputs=None,
        configs: Iterable[ApproximationConfig] | None = None,
    ) -> SweepResult:
        """Sweep the session's configurations on ``inputs`` (or the defaults)."""
        inputs = self._inputs_or_default(inputs)
        if configs is None:
            configs = self.configs
        return self.engine.sweep(self.app, inputs, configs)

    def full_sweep(
        self,
        inputs=None,
        configs: Iterable[ApproximationConfig] | None = None,
        work_groups: Sequence[tuple[int, int]] = WORK_GROUP_CANDIDATES,
    ) -> SweepResult:
        inputs = self._inputs_or_default(inputs)
        if configs is None:
            configs = self.configs
        return self.engine.full_sweep(self.app, inputs, configs, work_groups)

    def sweep_work_groups(
        self,
        configs: Sequence[ApproximationConfig],
        inputs=None,
        work_groups: Sequence[tuple[int, int]] = WORK_GROUP_CANDIDATES,
        include_baseline: bool = True,
    ) -> list[WorkGroupTiming]:
        inputs = self._inputs_or_default(inputs)
        return self.engine.sweep_work_groups(
            self.app, inputs, configs, work_groups, include_baseline
        )

    def best_work_group(
        self,
        config: ApproximationConfig,
        inputs=None,
        work_groups: Sequence[tuple[int, int]] = WORK_GROUP_CANDIDATES,
    ) -> tuple[int, int]:
        inputs = self._inputs_or_default(inputs)
        return self.engine.best_work_group(self.app, inputs, config, work_groups)

    # ------------------------------------------------------------------
    # Auto-tuning (quality-aware runtime)
    # ------------------------------------------------------------------
    def autotune(
        self,
        error_budget: float | None = None,
        calibration_inputs: Sequence | None = None,
        configs: Iterable[ApproximationConfig] | None = None,
        tuner=None,
    ) -> "Session":
        """Calibrate on representative inputs and select a configuration.

        Returns the session itself so the tuned configuration can be used
        fluently: ``engine.session(app="sobel3").autotune(0.01).run(image)``.

        ``tuner`` (a :class:`repro.autotune.Tuner`, or ``True`` for a
        default one on this engine) switches calibration to the
        database-backed fast path: the entries are computed through the
        same engine primitives — bit-identical floats — but persisted in
        the tuner's :class:`~repro.autotune.db.TuningDB`, so a *second*
        autotune of the same question performs zero kernel evaluations.
        Without ``tuner`` the behaviour is unchanged.
        """
        if error_budget is not None:
            self.error_budget = error_budget
        if configs is not None:
            self.configs = list(configs)
        self.calibrate(calibration_inputs, tuner=tuner)
        return self

    def calibrate(
        self, calibration_inputs: Sequence | None = None, tuner=None
    ) -> list[CalibrationEntry]:
        """Measure error/speedup of every candidate on the calibration inputs.

        The error statistics are aggregated over the calibration inputs;
        the speedup is computed once per configuration from the timing
        model (it depends only on the configuration and the input size), so
        calibration entries are deterministic regardless of sweep ordering.

        With ``tuner`` the entries come from the tuning-database-backed
        fast path (see :meth:`autotune`); a warm database answers without
        evaluating anything, and a cold one produces bit-identical entries
        to this method's in-process path.
        """
        if self.error_budget is None or self.error_budget <= 0:
            raise TuningError("error budget must be positive")
        tracer = get_tracer()
        start_ns = time.monotonic_ns() if tracer.enabled else 0
        if tuner is not None:
            entries = self._calibrate_with_tuner(calibration_inputs, tuner)
            if tracer.enabled:
                tracer.record(
                    "session.calibrate",
                    category="calibrate",
                    start_ns=start_ns,
                    duration_ns=time.monotonic_ns() - start_ns,
                    app=self.app.name,
                    source="tuning-db",
                    configs=len(entries),
                )
            return entries
        if calibration_inputs is None:
            calibration_inputs = [self._inputs_or_default(None)]
        if len(calibration_inputs) == 0:
            raise TuningError("calibration requires at least one input")

        configs = self.configs
        if configs is None:
            from ..core.config import default_configurations

            configs = default_configurations(self.app.halo)
            self.configs = list(configs)  # expose what calibration explored

        # Bucket by the full configuration identity, not the figure label:
        # configurations differing only in work group (or scheme
        # parameters) share a label but calibrate independently.  The
        # tuner fast path (repro.autotune) buckets identically, which is
        # what keeps the two paths bit-identical.
        per_config_errors: dict[str, list[float]] = {c.key: [] for c in configs}
        by_key = {c.key: c for c in configs}
        for inputs in calibration_inputs:
            sweep = self.engine.sweep(self.app, inputs, configs)
            for point in sweep.points:
                per_config_errors[point.config.key].append(point.error)

        global_size = self.app.global_size(calibration_inputs[0])
        baseline_time = self.engine.baseline_timing(self.app, global_size).total_time_s

        self.calibration = []
        for key, errors in per_config_errors.items():
            config = by_key[key]
            approx_time = self.engine.timing(self.app, config, global_size).total_time_s
            self.calibration.append(
                CalibrationEntry(
                    config=config,
                    mean_error=float(np.mean(errors)),
                    max_error=float(np.max(errors)),
                    speedup=baseline_time / approx_time,
                )
            )
        self.calibration.sort(key=lambda e: e.speedup, reverse=True)
        self.selected = self.select()
        if tracer.enabled:
            tracer.record(
                "session.calibrate",
                category="calibrate",
                start_ns=start_ns,
                duration_ns=time.monotonic_ns() - start_ns,
                app=self.app.name,
                source="sweep",
                configs=len(self.calibration),
                inputs=len(calibration_inputs),
            )
        return self.calibration

    def _calibrate_with_tuner(
        self, calibration_inputs: Sequence | None, tuner
    ) -> list[CalibrationEntry]:
        """Database-backed calibration via :meth:`repro.autotune.Tuner
        .calibration_entries` (bit-identical to the in-process path)."""
        if tuner is True:
            from ..autotune import Tuner

            tuner = Tuner(engine=self.engine)
        if tuner.engine is not self.engine:
            raise TuningError(
                "the tuner must share this session's engine (device, caches "
                "and timing model define the calibration results)"
            )
        if calibration_inputs is None:
            calibration_inputs = [self._inputs_or_default(None)]
        if len(calibration_inputs) == 0:
            raise TuningError("calibration requires at least one input")
        if self.configs is None:
            from ..core.config import default_configurations

            self.configs = default_configurations(self.app.halo)
        self.calibration = tuner.calibration_entries(
            self.app, list(calibration_inputs), self.configs
        )
        self.selected = self.select()
        return self.calibration

    def select(self) -> ApproximationConfig:
        """Fastest calibrated configuration expected to meet the budget.

        Falls back to the accurate configuration when nothing qualifies.
        """
        if not self.calibration:
            raise TuningError("calibrate() must be called before select()")
        assert self.error_budget is not None
        for entry in self.calibration:  # sorted fastest-first
            if entry.admissible(self.error_budget, self.safety_margin):
                return entry.config
        return ACCURATE_CONFIG

    # ------------------------------------------------------------------
    # Quality-aware execution
    # ------------------------------------------------------------------
    def run(self, inputs, monitor: bool = False) -> ExecutionRecord:
        """Run the application on ``inputs`` with the selected configuration.

        With ``monitor=True`` the accurate output is also computed, the
        achieved error recorded, and the configuration demoted to a more
        accurate one when the budget was violated (mirroring the
        recalibration loop of quality-aware runtimes such as SAGE).
        """
        config = self.selected
        if config.is_accurate:
            # Copy: the cached reference is shared (and read-only); the
            # record's output belongs to the caller, who may mutate it.
            output = np.array(self.engine.reference(self.app, inputs))
            record = ExecutionRecord(
                config=config, error=0.0, within_budget=True, output=output
            )
            self.history.append(record)
            return record

        output = self.app.approximate(inputs, config)
        error = None
        within = True
        if monitor:
            reference = self.engine.reference(self.app, inputs)
            error = compute_error(reference, output, self.app.error_metric)
            budget = self.error_budget if self.error_budget is not None else float("inf")
            within = error <= budget
            if not within:
                self._demote(config)
        record = ExecutionRecord(config=config, error=error, within_budget=within, output=output)
        self.history.append(record)
        return record

    def _demote(self, config: ApproximationConfig) -> None:
        """Switch to the next more accurate calibrated configuration."""
        more_accurate = [
            entry
            for entry in sorted(self.calibration, key=lambda e: e.mean_error)
            if entry.config != config
        ]
        for entry in more_accurate:
            if entry.mean_error < self._calibrated_error(config):
                self.selected = entry.config
                return
        self.selected = ACCURATE_CONFIG

    def _calibrated_error(self, config: ApproximationConfig) -> float:
        for entry in self.calibration:
            if entry.config == config:
                return entry.mean_error
        return float("inf")

    # ------------------------------------------------------------------
    def report(self) -> str:
        """Human-readable calibration + selection summary."""
        budget = self.error_budget if self.error_budget is not None else float("nan")
        lines = [
            f"Quality-aware session for {self.app.name!r} "
            f"(budget {budget:.2%}, margin {self.safety_margin:.0%})"
        ]
        for entry in self.calibration:
            marker = "*" if entry.config.label == self.selected.label else " "
            lines.append(
                f" {marker} {entry.config.label:<14s} mean err {entry.mean_error * 100:6.2f}%  "
                f"max err {entry.max_error * 100:6.2f}%  speedup {entry.speedup:5.2f}x"
            )
        lines.append(f"selected: {self.selected.label}")
        return "\n".join(lines)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"<Session app={self.app.name!r} selected={self.selected.label!r} "
            f"on {self.engine!r}>"
        )

    # The baseline configuration is occasionally useful to session users.
    def baseline_config(self) -> ApproximationConfig:
        return baseline_config_for(self.app)
