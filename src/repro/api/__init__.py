"""``repro.api`` — the unified session API.

The package centres on :class:`~repro.api.engine.PerforationEngine`, the
facade that owns the simulated device, the timing model, the memoization
cache and the worker pool, and hands out fluent per-application
:class:`~repro.api.session.Session` objects:

.. code-block:: python

    from repro.api import PerforationEngine

    engine = PerforationEngine(device="firepro-w5100", workers="auto")
    sweep = engine.session(app="gaussian").sweep()
    tuned = engine.session(app="sobel3").autotune(error_budget=0.01)

Supporting pieces:

* :mod:`repro.api.registry` — the string-keyed registries behind
  ``app=``/``device=`` name resolution (see
  :func:`repro.apps.register_application`,
  :func:`repro.clsim.device.register_device`,
  :func:`repro.core.schemes.register_scheme`);
* :mod:`repro.api.cache` — memoization of reference outputs and timing
  estimates shared by every session of an engine.

Heavy submodules are imported lazily so that the registry module — which
the application/device/scheme packages import at definition time — does not
drag the whole evaluation stack in circularly.
"""

from __future__ import annotations

from .registry import Registry, RegistryError

__all__ = [
    "ArtifactCache",
    "ArtifactStats",
    "CacheStats",
    "CalibrationEntry",
    "ExecutionRecord",
    "PerforationEngine",
    "Registry",
    "RegistryError",
    "ResultCache",
    "Session",
    "DiskStore",
    "StoreStats",
    "default_artifact_cache",
]

_LAZY = {
    "PerforationEngine": ("repro.api.engine", "PerforationEngine"),
    "Session": ("repro.api.session", "Session"),
    "CalibrationEntry": ("repro.api.session", "CalibrationEntry"),
    "ExecutionRecord": ("repro.api.session", "ExecutionRecord"),
    "ResultCache": ("repro.api.cache", "ResultCache"),
    "CacheStats": ("repro.api.cache", "CacheStats"),
    "ArtifactCache": ("repro.api.artifacts", "ArtifactCache"),
    "ArtifactStats": ("repro.api.artifacts", "ArtifactStats"),
    "DiskStore": ("repro.api.store", "DiskStore"),
    "StoreStats": ("repro.api.store", "StoreStats"),
    "default_artifact_cache": ("repro.api.artifacts", "default_cache"),
}


def __getattr__(name: str):
    try:
        module_name, attribute = _LAZY[name]
    except KeyError:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}") from None
    import importlib

    value = getattr(importlib.import_module(module_name), attribute)
    globals()[name] = value  # cache for subsequent lookups
    return value


def __dir__() -> list[str]:
    return sorted(set(globals()) | set(_LAZY))
