"""Memoization cache behind :class:`repro.api.engine.PerforationEngine`.

Two kinds of results are worth remembering across a sweep:

* **reference outputs** — the accurate kernel output for one input.  Every
  configuration of a sweep (and every calibration pass of the quality-aware
  session) compares against the same reference, so it must be computed once
  per (application, input) pair, even when configurations are evaluated on
  parallel workers;
* **timing estimates** — the analytical model's breakdown for one
  (application, configuration, global size) triple on the engine's device.
  The baseline timing in particular is requested once per evaluated
  configuration and is identical every time.

Inputs are identified by content: NumPy arrays hash to a digest of their
bytes, dataclass instances (e.g. :class:`repro.data.hotspot.HotspotInput`)
hash field by field.  Objects that cannot be fingerprinted fall back to
identity, in which case the cache keeps the object alive so the identity
cannot be recycled.
"""

from __future__ import annotations

import dataclasses
import hashlib
import threading
from collections import OrderedDict
from dataclasses import dataclass
from typing import Any, Callable, Hashable

import numpy as np

#: Default bound on cached reference outputs.  References can be large
#: (a 1024x1024 float64 image is 8 MiB), so the store is a small LRU: a
#: sweep or calibration pass only ever needs the references of the inputs
#: currently in flight.
DEFAULT_MAX_REFERENCES = 32

#: Default bound on cached timing estimates.  Individual estimates are tiny,
#: but a long-running serving process sweeps an open-ended stream of
#: (app, config, size) keys, so the store is LRU-bounded too.
DEFAULT_MAX_TIMINGS = 4096


@dataclass
class CacheStats:
    """Hit/miss/eviction counters of one :class:`ResultCache`."""

    reference_hits: int = 0
    reference_misses: int = 0
    reference_evictions: int = 0
    timing_hits: int = 0
    timing_misses: int = 0
    timing_evictions: int = 0

    @property
    def hits(self) -> int:
        return self.reference_hits + self.timing_hits

    @property
    def misses(self) -> int:
        return self.reference_misses + self.timing_misses

    @property
    def evictions(self) -> int:
        return self.reference_evictions + self.timing_evictions

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups served from the cache (0.0 when untouched)."""
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def describe(self) -> str:
        return (
            f"references: {self.reference_hits} hits / {self.reference_misses} misses "
            f"/ {self.reference_evictions} evictions, "
            f"timings: {self.timing_hits} hits / {self.timing_misses} misses "
            f"/ {self.timing_evictions} evictions"
        )

    def snapshot(self) -> dict:
        """Canonical cache-stat shape shared by every cache (see repro.obs)."""
        from ..obs.metrics import cache_snapshot

        return cache_snapshot(self)


def input_token(inputs: Any) -> Hashable:
    """A hashable fingerprint of an evaluation input.

    Arrays are digested by content (shape, dtype, bytes); containers and
    dataclasses recurse; plain hashables pass through.  Returns ``None``
    when the object cannot be fingerprinted (the cache then falls back to
    identity keying).
    """
    if isinstance(inputs, np.ndarray):
        digest = hashlib.sha1()
        digest.update(str(inputs.shape).encode())
        digest.update(str(inputs.dtype).encode())
        digest.update(np.ascontiguousarray(inputs).tobytes())
        return ("ndarray", digest.hexdigest())
    if dataclasses.is_dataclass(inputs) and not isinstance(inputs, type):
        parts = tuple(
            (f.name, input_token(getattr(inputs, f.name)))
            for f in dataclasses.fields(inputs)
        )
        if any(token is None for _, token in parts):
            return None
        return (type(inputs).__name__, parts)
    if isinstance(inputs, (tuple, list)):
        parts = tuple(input_token(item) for item in inputs)
        if any(token is None for token in parts):
            return None
        return ("sequence", parts)
    if isinstance(inputs, (str, bytes, int, float, bool)) or inputs is None:
        return ("scalar", inputs)
    return None


class ResultCache:
    """Thread-safe LRU store for reference outputs and timing estimates.

    Both stores are bounded (``None`` lifts a bound): ``max_references``
    caps the potentially large accurate outputs, ``max_timings`` the timing
    breakdowns.  Evictions, hits and misses are counted in :attr:`stats`.
    """

    def __init__(
        self,
        max_references: int | None = DEFAULT_MAX_REFERENCES,
        max_timings: int | None = DEFAULT_MAX_TIMINGS,
    ) -> None:
        self._lock = threading.Lock()
        self.max_references = max_references
        self.max_timings = max_timings
        self._references: OrderedDict[Hashable, np.ndarray] = OrderedDict()
        self._timings: OrderedDict[Hashable, Any] = OrderedDict()
        self._reference_locks: dict[Hashable, threading.Lock] = {}
        #: Inputs kept alive for identity keys, keyed by id() so repeat
        #: lookups do not re-pin and eviction can release them.
        self._pinned: dict[int, Any] = {}
        self.stats = CacheStats()

    # ------------------------------------------------------------------
    def _reference_key(self, app_name: str, inputs: Any) -> Hashable:
        token = input_token(inputs)
        if token is None:
            with self._lock:
                self._pinned.setdefault(id(inputs), inputs)
            token = ("identity", id(inputs))
        return (app_name, token)

    def reference(
        self, app_name: str, inputs: Any, compute: Callable[[], np.ndarray]
    ) -> np.ndarray:
        """The accurate output for ``inputs``, computed at most once.

        Concurrent requests for the same key block until the first one has
        computed the value; requests for different keys do not serialise.
        """
        key = self._reference_key(app_name, inputs)
        with self._lock:
            if key in self._references:
                self.stats.reference_hits += 1
                self._references.move_to_end(key)
                return self._references[key]
            key_lock = self._reference_locks.setdefault(key, threading.Lock())
        with key_lock:
            with self._lock:
                if key in self._references:
                    self.stats.reference_hits += 1
                    self._references.move_to_end(key)
                    return self._references[key]
            value = np.asarray(compute())
            # Cached references are shared between callers; freeze them so
            # in-place mutation fails loudly instead of silently poisoning
            # every later error computation against this input.
            value.setflags(write=False)
            with self._lock:
                self._references[key] = value
                self.stats.reference_misses += 1
                while (
                    self.max_references is not None
                    and len(self._references) > self.max_references
                ):
                    evicted, _ = self._references.popitem(last=False)
                    self.stats.reference_evictions += 1
                    self._reference_locks.pop(evicted, None)
                    _, evicted_token = evicted
                    if (
                        isinstance(evicted_token, tuple)
                        and evicted_token
                        and evicted_token[0] == "identity"
                    ):
                        self._pinned.pop(evicted_token[1], None)
        return value

    # ------------------------------------------------------------------
    def timing(self, key: Hashable, compute: Callable[[], Any]):
        """The timing estimate for ``key`` (cheap enough to compute under lock)."""
        with self._lock:
            if key in self._timings:
                self.stats.timing_hits += 1
                self._timings.move_to_end(key)
                return self._timings[key]
        value = compute()
        with self._lock:
            self._timings.setdefault(key, value)
            self.stats.timing_misses += 1
            while self.max_timings is not None and len(self._timings) > self.max_timings:
                self._timings.popitem(last=False)
                self.stats.timing_evictions += 1
        return value

    # ------------------------------------------------------------------
    def clear(self) -> None:
        """Drop all cached results (counters are reset too)."""
        with self._lock:
            self._references.clear()
            self._timings.clear()
            self._reference_locks.clear()
            self._pinned.clear()
            self.stats = CacheStats()

    def __len__(self) -> int:
        with self._lock:
            return len(self._references) + len(self._timings)
