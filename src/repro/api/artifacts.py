"""On-disk artifact cache for codegen-lowered kernels.

The codegen execution backend (:mod:`repro.kernellang.codegen`) lowers each
(kernel source, work-group shape, batched?) triple to Python source once.
This module persists those sources across processes, keyed by the lowering's
content hash, so repeated sweeps, serve sessions and benchmark runs skip the
lowering step entirely:

* the default location is ``~/.cache/repro-codegen``; the
  ``REPRO_CODEGEN_CACHE`` environment variable overrides it, and the values
  ``0`` / ``off`` / ``none`` / ``disabled`` turn persistence off;
* writes are atomic (temp file + ``os.replace``), so a crashed or
  concurrent process can never leave a torn entry;
* corrupt or stale entries are *recovered from*, never trusted: a bad
  header here (or a failed ``compile()`` in the consumer) counts as a miss,
  the entry is dropped, and the kernel is lowered fresh — the content key
  embeds the lowering format version, so old-format artifacts simply miss;
* the cache is bounded: beyond ``max_entries`` (default 512, overridable
  via ``REPRO_CODEGEN_CACHE_MAX``) the least-recently-used entries are
  evicted (``get`` refreshes an entry's mtime).

Every filesystem failure degrades to "no cache" — executing a kernel never
fails because the cache directory is unwritable, full or being raced.

The atomic-write/LRU/corruption-recovery machinery itself is generic and
lives in :class:`repro.api.store.DiskStore`; this module configures it for
Python artifact sources (the autotuning database,
:mod:`repro.autotune.db`, configures the same store for JSON tuning
records).
"""

from __future__ import annotations

import os

from .store import DISABLED_VALUES, DiskStore, StoreStats, env_store_config

__all__ = [
    "ARTIFACT_HEADER",
    "ArtifactCache",
    "ArtifactStats",
    "DISABLED_VALUES",
    "DEFAULT_CACHE_DIR",
    "DEFAULT_MAX_ENTRIES",
    "ENV_CACHE_DIR",
    "ENV_CACHE_MAX",
    "default_cache",
    "env_store_config",
]

#: Environment variable overriding the cache directory (or disabling it).
ENV_CACHE_DIR = "REPRO_CODEGEN_CACHE"

#: Environment variable overriding the eviction bound.
ENV_CACHE_MAX = "REPRO_CODEGEN_CACHE_MAX"

DEFAULT_CACHE_DIR = "~/.cache/repro-codegen"
DEFAULT_MAX_ENTRIES = 512

#: Every artifact starts with this line; anything else is treated as corrupt.
ARTIFACT_HEADER = "# repro-codegen artifact"

#: Backwards-compatible alias: the stats dataclass now lives with the store.
ArtifactStats = StoreStats


class ArtifactCache(DiskStore):
    """Content-keyed store of lowered kernel sources under one directory.

    Keys are the hex content hashes produced by
    :func:`repro.kernellang.codegen.artifact_key`; values are Python source
    files (one per key).  All operations are best-effort: filesystem errors
    count as misses / no-ops and are tallied in :attr:`stats`.
    """

    def __init__(
        self,
        root: str | os.PathLike | None = None,
        max_entries: int | None = None,
    ) -> None:
        if root is None:
            root = DEFAULT_CACHE_DIR
        if max_entries is None:
            max_entries = DEFAULT_MAX_ENTRIES
        super().__init__(
            root, max_entries, header=ARTIFACT_HEADER, suffix=".py"
        )


# ---------------------------------------------------------------------------
# Process default
# ---------------------------------------------------------------------------
_default_caches: dict[tuple[str, int], ArtifactCache] = {}


def default_cache() -> ArtifactCache | None:
    """The process-wide cache per the environment, or ``None`` if disabled.

    Re-reads the environment on every call (cheap, and lets tests and
    operators flip ``REPRO_CODEGEN_CACHE`` without restarting); instances
    are shared per (directory, bound) so the stats accumulate.
    """
    config = env_store_config(
        ENV_CACHE_DIR, ENV_CACHE_MAX, DEFAULT_CACHE_DIR, DEFAULT_MAX_ENTRIES
    )
    if config is None:
        return None
    cache = _default_caches.get(config)
    if cache is None:
        cache = _default_caches[config] = ArtifactCache(*config)
    return cache
