"""On-disk artifact cache for codegen-lowered kernels.

The codegen execution backend (:mod:`repro.kernellang.codegen`) lowers each
(kernel source, work-group shape, batched?) triple to Python source once.
This module persists those sources across processes, keyed by the lowering's
content hash, so repeated sweeps, serve sessions and benchmark runs skip the
lowering step entirely:

* the default location is ``~/.cache/repro-codegen``; the
  ``REPRO_CODEGEN_CACHE`` environment variable overrides it, and the values
  ``0`` / ``off`` / ``none`` / ``disabled`` turn persistence off;
* writes are atomic (temp file + :func:`os.replace`), so a crashed or
  concurrent process can never leave a torn entry;
* corrupt or stale entries are *recovered from*, never trusted: a bad
  header here (or a failed ``compile()`` in the consumer) counts as a miss,
  the entry is dropped, and the kernel is lowered fresh — the content key
  embeds the lowering format version, so old-format artifacts simply miss;
* the cache is bounded: beyond ``max_entries`` (default 512, overridable
  via ``REPRO_CODEGEN_CACHE_MAX``) the least-recently-used entries are
  evicted (``get`` refreshes an entry's mtime).

Every filesystem failure degrades to "no cache" — executing a kernel never
fails because the cache directory is unwritable, full or being raced.
"""

from __future__ import annotations

import os
import tempfile
from dataclasses import dataclass
from pathlib import Path

#: Environment variable overriding the cache directory (or disabling it).
ENV_CACHE_DIR = "REPRO_CODEGEN_CACHE"

#: Environment variable overriding the eviction bound.
ENV_CACHE_MAX = "REPRO_CODEGEN_CACHE_MAX"

#: Values of :data:`ENV_CACHE_DIR` that disable on-disk persistence.
DISABLED_VALUES = frozenset({"0", "off", "none", "disabled"})

DEFAULT_CACHE_DIR = "~/.cache/repro-codegen"
DEFAULT_MAX_ENTRIES = 512

#: Every artifact starts with this line; anything else is treated as corrupt.
ARTIFACT_HEADER = "# repro-codegen artifact"


@dataclass
class ArtifactStats:
    """Hit/miss/eviction counters of one :class:`ArtifactCache`."""

    hits: int = 0
    misses: int = 0
    puts: int = 0
    evictions: int = 0
    errors: int = 0

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        return self.hits / self.lookups if self.lookups else 0.0


class ArtifactCache:
    """Content-keyed store of lowered kernel sources under one directory.

    Keys are the hex content hashes produced by
    :func:`repro.kernellang.codegen.artifact_key`; values are Python source
    files (one per key).  All operations are best-effort: filesystem errors
    count as misses / no-ops and are tallied in :attr:`stats`.
    """

    def __init__(
        self,
        root: str | os.PathLike | None = None,
        max_entries: int | None = None,
    ) -> None:
        if root is None:
            root = DEFAULT_CACHE_DIR
        self.root = Path(root).expanduser()
        if max_entries is None:
            max_entries = DEFAULT_MAX_ENTRIES
        if max_entries < 1:
            raise ValueError(f"max_entries must be positive, got {max_entries}")
        self.max_entries = int(max_entries)
        self.stats = ArtifactStats()

    # ------------------------------------------------------------------
    @staticmethod
    def _valid_key(key: str) -> bool:
        return (
            isinstance(key, str)
            and 8 <= len(key) <= 128
            and all(c in "0123456789abcdef" for c in key)
        )

    def _path(self, key: str) -> Path:
        return self.root / f"{key}.py"

    # ------------------------------------------------------------------
    def get(self, key: str) -> str | None:
        """The cached source for ``key``, or ``None`` on miss/corruption."""
        if not self._valid_key(key):
            self.stats.misses += 1
            return None
        path = self._path(key)
        try:
            source = path.read_text(encoding="utf-8")
        except FileNotFoundError:
            self.stats.misses += 1
            return None
        except OSError:
            self.stats.errors += 1
            self.stats.misses += 1
            return None
        if not source.startswith(ARTIFACT_HEADER):
            # Corrupt (or foreign) entry: drop it and lower fresh.
            self.invalidate(key)
            self.stats.misses += 1
            return None
        try:
            os.utime(path)  # refresh LRU position
        except OSError:
            pass
        self.stats.hits += 1
        return source

    def put(self, key: str, source: str) -> bool:
        """Store ``source`` under ``key`` atomically; evicts beyond the bound."""
        if not self._valid_key(key) or not source.startswith(ARTIFACT_HEADER):
            self.stats.errors += 1
            return False
        try:
            self.root.mkdir(parents=True, exist_ok=True)
            fd, tmp_name = tempfile.mkstemp(
                dir=self.root, prefix=".tmp-", suffix=".py"
            )
            try:
                with os.fdopen(fd, "w", encoding="utf-8") as handle:
                    handle.write(source)
                os.replace(tmp_name, self._path(key))
            except BaseException:
                try:
                    os.unlink(tmp_name)
                except OSError:
                    pass
                raise
        except OSError:
            self.stats.errors += 1
            return False
        self.stats.puts += 1
        self._evict()
        return True

    def invalidate(self, key: str) -> None:
        """Drop one entry (missing entries are fine)."""
        if not self._valid_key(key):
            return
        try:
            self._path(key).unlink()
        except OSError:
            pass

    def clear(self) -> int:
        """Remove every entry; returns how many were removed."""
        removed = 0
        for path in self._entries():
            try:
                path.unlink()
                removed += 1
            except OSError:
                self.stats.errors += 1
        return removed

    # ------------------------------------------------------------------
    def _entries(self) -> list[Path]:
        try:
            return [p for p in self.root.glob("*.py") if not p.name.startswith(".")]
        except OSError:
            return []

    def __len__(self) -> int:
        return len(self._entries())

    def _evict(self) -> None:
        entries = self._entries()
        if len(entries) <= self.max_entries:
            return

        def mtime(path: Path) -> float:
            try:
                return path.stat().st_mtime
            except OSError:
                return 0.0

        entries.sort(key=mtime)
        for path in entries[: len(entries) - self.max_entries]:
            try:
                path.unlink()
                self.stats.evictions += 1
            except OSError:
                self.stats.errors += 1

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"ArtifactCache(root={str(self.root)!r}, entries={len(self)}, "
            f"max_entries={self.max_entries})"
        )


# ---------------------------------------------------------------------------
# Process default
# ---------------------------------------------------------------------------
_default_caches: dict[tuple[str, int], ArtifactCache] = {}


def default_cache() -> ArtifactCache | None:
    """The process-wide cache per the environment, or ``None`` if disabled.

    Re-reads the environment on every call (cheap, and lets tests and
    operators flip ``REPRO_CODEGEN_CACHE`` without restarting); instances
    are shared per (directory, bound) so the stats accumulate.
    """
    configured = os.environ.get(ENV_CACHE_DIR)
    if configured is not None and configured.strip().lower() in DISABLED_VALUES:
        return None
    # expanduser here too: '~' reaches us literally from systemd/Docker/CI
    # environments where no shell expanded it.
    root = os.path.expanduser(configured or DEFAULT_CACHE_DIR)
    try:
        max_entries = int(os.environ.get(ENV_CACHE_MAX, DEFAULT_MAX_ENTRIES))
    except ValueError:
        max_entries = DEFAULT_MAX_ENTRIES
    if max_entries < 1:
        max_entries = DEFAULT_MAX_ENTRIES
    cache_key = (root, max_entries)
    cache = _default_caches.get(cache_key)
    if cache is None:
        cache = _default_caches[cache_key] = ArtifactCache(root, max_entries)
    return cache
