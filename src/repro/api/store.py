"""Generic persistent key/value store with atomic writes and LRU eviction.

Two subsystems persist derived results across processes: the codegen
artifact cache (:mod:`repro.api.artifacts`) stores lowered kernel sources,
and the autotuning database (:mod:`repro.autotune.db`) stores tuning
results.  Both need the exact same on-disk machinery, so it lives here
once:

* one file per entry under a single directory, keyed by a hex content
  hash (hostile keys — path separators, non-hex — never touch the disk);
* writes are atomic (temp file + :func:`os.replace`), so a crashed or
  concurrent process can never leave a torn entry;
* corrupt entries are *recovered from*, never trusted: a missing header
  counts as a miss and the entry is dropped, so the consumer recomputes;
* the store is bounded: beyond ``max_entries`` the least-recently-used
  entries are evicted (``get`` refreshes an entry's mtime);
* every operation is best-effort — filesystem failures degrade to "no
  store" and are tallied in the :meth:`stats` counters, they never
  propagate to the caller.
"""

from __future__ import annotations

import os
import tempfile
from dataclasses import dataclass
from pathlib import Path

#: Environment values that disable a store's on-disk persistence.
DISABLED_VALUES = frozenset({"0", "off", "none", "disabled"})


def env_store_config(
    env_dir: str,
    env_max: str,
    default_dir: str,
    default_max: int,
) -> tuple[str, int] | None:
    """Resolve a store's (directory, bound) from the environment.

    Returns ``None`` when the directory variable holds one of the
    :data:`DISABLED_VALUES`.  Shared by the codegen artifact cache
    (``REPRO_CODEGEN_CACHE*``) and the tuning database
    (``REPRO_TUNING_DB*``) so every store honours the same
    override/disable conventions.
    """
    configured = os.environ.get(env_dir)
    if configured is not None and configured.strip().lower() in DISABLED_VALUES:
        return None
    # expanduser here too: '~' reaches us literally from systemd/Docker/CI
    # environments where no shell expanded it.
    root = os.path.expanduser(configured or default_dir)
    try:
        max_entries = int(os.environ.get(env_max, default_max))
    except ValueError:
        max_entries = default_max
    if max_entries < 1:
        max_entries = default_max
    return root, max_entries


@dataclass
class StoreStats:
    """Hit/miss/eviction counters of one :class:`DiskStore`."""

    hits: int = 0
    misses: int = 0
    puts: int = 0
    evictions: int = 0
    errors: int = 0

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        return self.hits / self.lookups if self.lookups else 0.0

    def __call__(self) -> "StoreStats":
        # Both access styles work on every store: ``store.stats`` (the
        # artifact cache's historical attribute form) and ``store.stats()``.
        return self

    def snapshot(self) -> dict:
        """Canonical cache-stat shape shared by every cache (see repro.obs)."""
        from ..obs.metrics import cache_snapshot

        return cache_snapshot(self)


class DiskStore:
    """Content-keyed store of text entries under one directory.

    Keys are hex content hashes; values are text files (one per key) whose
    first line must start with ``header`` — anything else is treated as
    corruption, dropped, and reported as a miss.  ``suffix`` picks the
    file extension (``.py`` for artifact sources, ``.json`` for tuning
    records), which also namespaces stores sharing a directory.

    With ``readonly=True`` the store never touches the disk beyond reads:
    no LRU mtime refresh on ``get``, no writes, no eviction, and corrupt
    entries are reported as misses but left in place.  Any number of
    processes can share one directory this way without write contention —
    the fleet workers (:mod:`repro.fleet`) open their replicated tuning
    database and artifact cache like this.
    """

    def __init__(
        self,
        root: str | os.PathLike,
        max_entries: int = 512,
        *,
        header: str,
        suffix: str = ".txt",
        readonly: bool = False,
    ) -> None:
        self.root = Path(root).expanduser()
        if max_entries < 1:
            raise ValueError(f"max_entries must be positive, got {max_entries}")
        if not header:
            raise ValueError("header must be a non-empty string")
        if not suffix.startswith("."):
            raise ValueError(f"suffix must start with '.', got {suffix!r}")
        self.max_entries = int(max_entries)
        self.header = header
        self.suffix = suffix
        self.readonly = bool(readonly)
        self._stats = StoreStats()

    # ------------------------------------------------------------------
    @property
    def stats(self) -> StoreStats:
        """The store's hit/miss/put/eviction/error counters.

        :class:`StoreStats` is callable (returning itself), so both
        ``store.stats`` and ``store.stats()`` read the counters.
        """
        return self._stats

    @staticmethod
    def _valid_key(key: str) -> bool:
        return (
            isinstance(key, str)
            and 8 <= len(key) <= 128
            and all(c in "0123456789abcdef" for c in key)
        )

    def _path(self, key: str) -> Path:
        return self.root / f"{key}{self.suffix}"

    # ------------------------------------------------------------------
    def get(self, key: str) -> str | None:
        """The stored text for ``key``, or ``None`` on miss/corruption."""
        if not self._valid_key(key):
            self._stats.misses += 1
            return None
        path = self._path(key)
        try:
            text = path.read_text(encoding="utf-8")
        except FileNotFoundError:
            self._stats.misses += 1
            return None
        except OSError:
            self._stats.errors += 1
            self._stats.misses += 1
            return None
        if not text.startswith(self.header):
            # Corrupt (or foreign) entry: drop it and let the caller recompute
            # (left in place when read-only — some writer owns the directory).
            self.invalidate(key)
            self._stats.misses += 1
            return None
        if not self.readonly:
            try:
                os.utime(path)  # refresh LRU position
            except OSError:
                pass
        self._stats.hits += 1
        return text

    def put(self, key: str, text: str) -> bool:
        """Store ``text`` under ``key`` atomically; evicts beyond the bound.

        A read-only store refuses silently (returns ``False``): persistence
        is best-effort everywhere, so callers already treat a failed put as
        "not persisted" and carry on.
        """
        if self.readonly:
            return False
        if not self._valid_key(key) or not text.startswith(self.header):
            self._stats.errors += 1
            return False
        try:
            self.root.mkdir(parents=True, exist_ok=True)
            fd, tmp_name = tempfile.mkstemp(
                dir=self.root, prefix=".tmp-", suffix=self.suffix
            )
            try:
                with os.fdopen(fd, "w", encoding="utf-8") as handle:
                    handle.write(text)
                os.replace(tmp_name, self._path(key))
            except BaseException:
                try:
                    os.unlink(tmp_name)
                except OSError:
                    pass
                raise
        except OSError:
            self._stats.errors += 1
            return False
        self._stats.puts += 1
        self._evict()
        return True

    def invalidate(self, key: str) -> None:
        """Drop one entry (missing entries are fine; no-op when read-only)."""
        if self.readonly or not self._valid_key(key):
            return
        try:
            self._path(key).unlink()
        except OSError:
            pass

    def clear(self) -> int:
        """Remove every entry; returns how many were removed."""
        if self.readonly:
            return 0
        removed = 0
        for path in self._entries():
            try:
                path.unlink()
                removed += 1
            except OSError:
                self._stats.errors += 1
        return removed

    # ------------------------------------------------------------------
    def _entries(self) -> list[Path]:
        try:
            return [
                p for p in self.root.glob(f"*{self.suffix}") if not p.name.startswith(".")
            ]
        except OSError:
            return []

    def __len__(self) -> int:
        return len(self._entries())

    def _evict(self) -> None:
        entries = self._entries()
        if len(entries) <= self.max_entries:
            return

        def mtime(path: Path) -> float:
            try:
                return path.stat().st_mtime
            except OSError:
                return 0.0

        entries.sort(key=mtime)
        for path in entries[: len(entries) - self.max_entries]:
            try:
                path.unlink()
                self._stats.evictions += 1
            except OSError:
                self._stats.errors += 1

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"{type(self).__name__}(root={str(self.root)!r}, entries={len(self)}, "
            f"max_entries={self.max_entries})"
        )
