"""The serving loop: scheduler + batched launches + online control.

:class:`PerforationServer` ties the subsystem together.  Requests are
submitted in virtual (trace) time; the server

1. asks the :class:`~repro.serve.controller.OnlineController` for the
   stream's current configuration and enqueues the request under its batch
   key (:class:`~repro.serve.scheduler.MicroBatchScheduler`);
2. flushes due micro-batches and executes each as **one** batched
   vectorized launch
   (:meth:`~repro.api.engine.PerforationEngine.run_compiled_batch`),
   short-circuiting requests whose result is in the LRU cache;
3. measures the quality of every served output against the memoized
   accurate reference (``monitor=True``), feeds the errors back into the
   controller, and — in ``strict`` mode — replaces any output that violates
   its request's budget with the accurate reference, so every *completed*
   request honours its error budget;
4. records everything in :class:`~repro.serve.metrics.ServeMetrics`.

The server is synchronous and single-threaded by design: batching, not
concurrency, is the throughput mechanism (worker-level parallelism lives in
the engine), and a deterministic loop is what makes the scheduler/controller
replay tests possible.
"""

from __future__ import annotations

import math
import time
from typing import Iterable, Mapping, Sequence

import numpy as np

from ..api.engine import PerforationEngine
from ..clsim.backends import ExecutionBackend, resolve_backend
from ..core.quality import compute_error
from ..obs import metrics as obs_metrics
from ..obs.trace import get_tracer
from .cache import ServeResultCache
from .controller import ControllerPolicy, OnlineController
from .metrics import ServeMetrics
from .requests import ServeRequest, ServeResponse
from .scheduler import MicroBatch, MicroBatchScheduler


class PerforationServer:
    """Quality-aware batch server over one :class:`PerforationEngine`.

    Parameters
    ----------
    engine:
        Engine to serve with (``None`` builds one for ``backend``).
    backend:
        Execution backend for the compiled launches; the vectorized backend
        additionally executes micro-batches as single stacked launches.
    max_batch / max_delay_ms:
        Micro-batching knobs (see :class:`MicroBatchScheduler`).
    policy / calibration_inputs / tuner:
        Controller knobs (see :class:`OnlineController`); ``tuner`` seeds
        the controller's ladders from a persistent tuning database, so a
        server restart skips per-process calibration entirely.
    cache_capacity:
        LRU capacity of the result cache; ``0`` disables caching.
    monitor:
        Measure every served output against the accurate reference and
        feed the controller.  Without monitoring the controller never
        adapts and budgets are not enforced.
    strict:
        With monitoring, replace budget-violating outputs with the
        accurate reference before completing the request.
    """

    def __init__(
        self,
        engine: PerforationEngine | None = None,
        backend: ExecutionBackend | str | None = "vectorized",
        *,
        max_batch: int = 8,
        max_delay_ms: float = 50.0,
        policy: ControllerPolicy | None = None,
        calibration_inputs: Mapping[str, Sequence] | None = None,
        tuner=None,
        cache_capacity: int = 256,
        monitor: bool = True,
        strict: bool = True,
    ) -> None:
        self.backend = resolve_backend(backend)
        self.engine = engine if engine is not None else PerforationEngine(backend=self.backend)
        self.scheduler = MicroBatchScheduler(max_batch=max_batch, max_delay_ms=max_delay_ms)
        self.controller = OnlineController(
            self.engine, policy=policy, calibration_inputs=calibration_inputs, tuner=tuner
        )
        self.cache = ServeResultCache(cache_capacity) if cache_capacity else None
        self.metrics = ServeMetrics()
        self.monitor = monitor
        self.strict = strict
        self._batch_seq = 0
        self._arrived_wall_ns: dict[int, int] = {}
        obs_metrics.register_collector(self.observability)

    # ------------------------------------------------------------------
    # Submission (virtual-time driven)
    # ------------------------------------------------------------------
    def submit(self, request: ServeRequest, now_ms: float | None = None) -> list[ServeResponse]:
        """Submit one request at virtual time ``now_ms`` (its arrival time).

        Returns the responses of every micro-batch that became due at or
        before ``now_ms`` — batches whose deadline passed before this
        arrival, plus any batch the submission filled up.
        """
        if get_tracer().enabled:
            self._arrived_wall_ns[request.request_id] = time.monotonic_ns()
        now = request.arrival_ms if now_ms is None else now_ms
        completed = self.poll(now)
        config = self.controller.choose(request.app, request.error_budget)
        app = self.engine.resolve_app(request.app)
        self.scheduler.submit(
            request, config, self.backend.name, app.global_size(request.inputs)
        )
        completed.extend(self.poll(now))
        return completed

    def poll(self, now_ms: float) -> list[ServeResponse]:
        """Flush and execute every micro-batch due at virtual time ``now_ms``."""
        responses: list[ServeResponse] = []
        for batch in self.scheduler.ready(now_ms):
            responses.extend(self._execute(batch))
        return responses

    def drain(self, now_ms: float = math.inf) -> list[ServeResponse]:
        """Flush everything still queued (end of trace)."""
        responses: list[ServeResponse] = []
        for batch in self.scheduler.flush(now_ms):
            responses.extend(self._execute(batch))
        return responses

    def run_trace(self, requests: Iterable[ServeRequest]) -> list[ServeResponse]:
        """Serve a whole trace in arrival order and finalise the metrics.

        Arrival times drive the virtual clock; the wall clock only measures
        how fast the server processed the trace (throughput, service times).
        """
        trace = sorted(requests, key=lambda r: (r.arrival_ms, r.request_id))
        wall_start = time.perf_counter()
        responses: list[ServeResponse] = []
        for request in trace:
            responses.extend(self.submit(request))
        if trace:
            responses.extend(self.drain(now_ms=trace[-1].arrival_ms))
        self.metrics.finish(time.perf_counter() - wall_start)
        return responses

    # ------------------------------------------------------------------
    # Batch execution
    # ------------------------------------------------------------------
    def _execute(self, batch: MicroBatch) -> list[ServeResponse]:
        app = self.engine.resolve_app(batch.app)
        config = batch.config
        self.metrics.record_batch(len(batch))
        self._batch_seq += 1
        batch_id = self._batch_seq

        with get_tracer().span(
            "serve.batch",
            category="serve",
            app=app.name,
            config=config.label,
            batch_id=batch_id,
            size=len(batch),
        ) as span:
            wall_start = time.perf_counter()
            cached: dict[int, tuple[np.ndarray, float | None]] = {}
            keys: dict[int, object] = {}
            misses: list[ServeRequest] = []
            first_miss: dict[object, int] = {}
            duplicate_of: dict[int, int] = {}
            for request in batch.requests:
                key = (
                    self.cache.key(app.name, config.label, request.inputs)
                    if self.cache is not None
                    else None
                )
                keys[request.request_id] = key
                hit = self.cache.get(key) if self.cache is not None else None
                if hit is not None:
                    cached[request.request_id] = hit
                elif key is not None and key in first_miss:
                    # Identical input in the same micro-batch: execute once,
                    # fan the output out to the duplicates.
                    duplicate_of[request.request_id] = first_miss[key]
                else:
                    if key is not None:
                        first_miss[key] = request.request_id
                    misses.append(request)

            outputs: dict[int, np.ndarray] = {}
            if misses:
                # The batched fast path: one perforated kernel, one stacked
                # launch for every distinct cache miss of the micro-batch.
                arrays = self.engine.run_compiled_batch(
                    app, [r.inputs for r in misses], config, backend=self.backend
                )
                for request, array in zip(misses, arrays):
                    outputs[request.request_id] = array
            for duplicate, original in duplicate_of.items():
                # Copy: each response's output belongs to its own caller.
                outputs[duplicate] = np.array(outputs[original])
            service_ms = (time.perf_counter() - wall_start) * 1000.0
            span.set(cache_hits=len(cached), launched=len(misses))

            responses = []
            for request in batch.requests:
                responses.append(
                    self._complete(
                        batch, app, request, cached, outputs, keys, service_ms, batch_id
                    )
                )
        return responses

    def _complete(
        self,
        batch: MicroBatch,
        app,
        request: ServeRequest,
        cached: dict,
        outputs: dict,
        keys: dict,
        service_ms: float,
        batch_id: int = 0,
    ) -> ServeResponse:
        config = batch.config
        cache_hit = request.request_id in cached
        if cache_hit:
            output, error = cached[request.request_id]
        else:
            output = outputs[request.request_id]
            error = None

        within = True
        fallback = False
        if self.monitor:
            if error is None:
                reference = self.engine.reference(app, request.inputs)
                error = compute_error(reference, output, app.error_metric)
            # The controller sees the *measured* quality of the approximate
            # output, so a violation tightens the stream even when strict
            # mode masks it from the caller.
            self.controller.observe(app.name, request.error_budget, error)
            if not cache_hit and self.cache is not None:
                self.cache.put(keys[request.request_id], output, error)
            within = error <= request.error_budget
            if not within and self.strict:
                self.metrics.record_violation()
                reference = self.engine.reference(app, request.inputs)
                output = np.array(reference)  # caller owns the response output
                error = 0.0
                within = True
                fallback = True
        elif not cache_hit and self.cache is not None:
            self.cache.put(keys[request.request_id], output, error)

        response = ServeResponse(
            request_id=request.request_id,
            app=app.name,
            config_label=config.label,
            output=output,
            error=error,
            within_budget=within,
            fallback=fallback,
            cache_hit=cache_hit,
            batch_size=len(batch),
            queue_delay_ms=max(0.0, batch.formed_ms - request.arrival_ms),
            service_time_ms=service_ms,
            completed_ms=batch.formed_ms,
        )
        self.metrics.record_response(response, request.error_budget)
        tracer = get_tracer()
        if tracer.enabled:
            end_ns = time.monotonic_ns()
            start_ns = self._arrived_wall_ns.pop(request.request_id, end_ns)
            tracer.record(
                "serve.request",
                category="serve",
                start_ns=start_ns,
                duration_ns=end_ns - start_ns,
                trace_id=request.trace_label,
                app=app.name,
                config=config.label,
                batch_id=batch_id,
                batch_size=len(batch),
                cache_hit=cache_hit,
                fallback=fallback,
                queue_delay_ms=response.queue_delay_ms,
                service_ms=service_ms,
            )
        return response

    # ------------------------------------------------------------------
    # Observability
    # ------------------------------------------------------------------
    def observability(self) -> obs_metrics.MetricsRegistry:
        """One mergeable registry over every layer this server touches.

        Absorbs the serve counters, the result caches (serve LRU and engine
        memoization), the process-wide codegen artifact cache, the tuning
        database (when the controller is tuner-backed), and the controller's
        tighten/loosen decisions — the scattered stat structs in one shape.
        """
        registry = obs_metrics.MetricsRegistry()
        m = self.metrics
        for name, value in (
            ("serve.completed", m.completed),
            ("serve.violations", m.violations),
            ("serve.fallbacks", m.fallbacks),
            ("serve.cache_hits", m.cache_hits),
            ("serve.shed", m.shed),
            ("serve.failed", m.failed),
            ("serve.worker_failures", m.worker_failures),
            ("serve.replayed", m.replayed),
            ("serve.batches", m.batches),
        ):
            registry.counter(name).inc(value)
        registry.gauge("serve.worst_budget_fraction").set(m.worst_budget_fraction)
        latency = registry.histogram("serve.latency_ms")
        for value in m.latencies_ms:
            latency.observe(value)
        queue = registry.histogram("serve.queue_delay_ms")
        for value in m.queue_delays_ms:
            queue.observe(value)

        if self.cache is not None:
            registry.absorb_cache("serve.result_cache", self.cache.stats)
        registry.absorb_cache("engine.result_cache", self.engine.cache_stats)
        from ..api.artifacts import default_cache

        artifact_cache = default_cache()
        if artifact_cache is not None:
            registry.absorb_cache("codegen.artifact_cache", artifact_cache.stats)
        tuner = self.controller.tuner
        if tuner is not None and getattr(tuner, "db", None) is not None:
            registry.absorb_cache("autotune.tuning_db", tuner.db.stats())
        for stream in self.controller.snapshot().values():
            registry.counter("controller.switches").inc(stream["switches"])
            registry.counter("controller.tightened").inc(stream["tightened"])
            registry.counter("controller.loosened").inc(stream["loosened"])
        return registry

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"<PerforationServer backend={self.backend.name!r} "
            f"max_batch={self.scheduler.max_batch} completed={self.metrics.completed}>"
        )
