"""Bounded LRU cache for served results.

Serving workloads repeat inputs (the same frame, tile or grid gets
requested again), so the server memoizes *served kernel outputs* keyed by
(application, configuration label, input fingerprint).  The store is a
strict LRU with a configurable capacity — a serving process must not grow
without bound — and counts hits, misses and evictions.

Inputs are fingerprinted by content via
:func:`repro.api.cache.input_token`; inputs that cannot be fingerprinted
simply bypass the cache (counted as misses).
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass
from typing import Any, Hashable

import numpy as np

from ..api.cache import input_token
from ..core.errors import ConfigurationError

#: Default number of cached results.
DEFAULT_CAPACITY = 256


@dataclass
class ServeCacheStats:
    """Hit/miss/eviction counters of one :class:`ServeResultCache`."""

    hits: int = 0
    misses: int = 0
    evictions: int = 0

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def describe(self) -> str:
        return (
            f"{self.hits} hits / {self.misses} misses / {self.evictions} evictions "
            f"(hit rate {self.hit_rate:.1%})"
        )

    def snapshot(self) -> dict:
        """Canonical cache-stat shape shared by every cache (see repro.obs)."""
        from ..obs.metrics import cache_snapshot

        return cache_snapshot(self)


class ServeResultCache:
    """Thread-safe bounded LRU of (output, measured error) pairs."""

    def __init__(self, capacity: int = DEFAULT_CAPACITY) -> None:
        if capacity < 1:
            raise ConfigurationError(f"cache capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self._lock = threading.Lock()
        self._entries: OrderedDict[Hashable, tuple[np.ndarray, float | None]] = (
            OrderedDict()
        )
        self.stats = ServeCacheStats()

    # ------------------------------------------------------------------
    @staticmethod
    def key(app_name: str, config_label: str, inputs: Any) -> Hashable | None:
        """Cache key of one request, or ``None`` when not fingerprintable."""
        token = input_token(inputs)
        if token is None:
            return None
        return (app_name, config_label, token)

    def get(self, key: Hashable | None) -> tuple[np.ndarray, float | None] | None:
        """Cached (output, error) for ``key``; counts the hit or miss."""
        with self._lock:
            if key is not None and key in self._entries:
                self.stats.hits += 1
                self._entries.move_to_end(key)
                return self._entries[key]
            self.stats.misses += 1
            return None

    def put(self, key: Hashable | None, output: np.ndarray, error: float | None) -> None:
        """Store a served output (shared read-only; ``.copy()`` to mutate)."""
        if key is None:
            return
        stored = np.array(output, copy=True)
        stored.setflags(write=False)
        with self._lock:
            self._entries[key] = (stored, error)
            self._entries.move_to_end(key)
            while len(self._entries) > self.capacity:
                self._entries.popitem(last=False)
                self.stats.evictions += 1

    # ------------------------------------------------------------------
    def clear(self) -> None:
        with self._lock:
            self._entries.clear()
            self.stats = ServeCacheStats()

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<ServeResultCache {len(self)}/{self.capacity} {self.stats.describe()}>"
