"""Online perforation controller.

The controller owns the serving-time *policy* half of the paper's
quality-aware runtime: which :class:`~repro.core.config.ApproximationConfig`
should a given application's requests run with, under a given error budget?

It starts where :meth:`Session.calibrate <repro.api.session.Session.calibrate>`
ends: each application is calibrated once (offline-style, on representative
inputs) into a *ladder* of configurations sorted fastest-first, terminated
by the accurate configuration (error 0, speedup 1).  Per (application,
budget) stream the controller then walks that ladder online from monitored
quality feedback:

* **tighten** — when the exponentially weighted moving average of the
  measured error drifts above the budget, step down the ladder to the next
  configuration whose calibrated error is strictly lower (ultimately the
  accurate configuration, which cannot violate);
* **loosen** — when the EWMA sits well below the budget
  (``ewma < loosen_headroom * budget``) for at least ``min_dwell``
  observations, step back up to the nearest faster configuration that
  calibration deems admissible under the budget.

Every decision is a pure function of the observation sequence, so a
replayed trace reproduces the exact same configuration choices.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Sequence

from ..core.config import ACCURATE_CONFIG, ApproximationConfig
from ..core.errors import TuningError


@dataclass(frozen=True)
class ControllerPolicy:
    """Knobs of the online controller."""

    #: Calibration safety margin: a configuration is admissible when
    #: ``mean_error * (1 + safety_margin) <= budget`` (same rule as
    #: :meth:`repro.api.session.CalibrationEntry.admissible`).
    safety_margin: float = 0.25
    #: Smoothing factor of the measured-error EWMA.
    ewma_alpha: float = 0.25
    #: Loosen only when ``ewma < loosen_headroom * budget``.
    loosen_headroom: float = 0.4
    #: Minimum observations on the current configuration before loosening.
    min_dwell: int = 16

    def __post_init__(self) -> None:
        if not 0.0 < self.ewma_alpha <= 1.0:
            raise TuningError(f"ewma_alpha must be in (0, 1], got {self.ewma_alpha}")
        if not 0.0 <= self.loosen_headroom < 1.0:
            raise TuningError(
                f"loosen_headroom must be in [0, 1), got {self.loosen_headroom}"
            )
        if self.min_dwell < 1:
            raise TuningError(f"min_dwell must be >= 1, got {self.min_dwell}")


@dataclass(frozen=True)
class LadderEntry:
    """One rung of an application's configuration ladder."""

    config: ApproximationConfig
    mean_error: float
    speedup: float

    def admissible(self, budget: float, safety_margin: float) -> bool:
        return self.mean_error * (1.0 + safety_margin) <= budget


@dataclass
class _StreamState:
    """Controller state of one (application, budget) request stream."""

    index: int
    ewma: float | None = None
    since_switch: int = 0
    switches: int = 0
    tightened: int = 0
    loosened: int = 0


class OnlineController:
    """Chooses and adapts the configuration per (application, budget) stream.

    Parameters
    ----------
    engine:
        The :class:`~repro.api.engine.PerforationEngine` used for
        calibration sweeps (shared with the server, so references and
        timings are cached once).
    policy:
        The adaptation knobs (:class:`ControllerPolicy`).
    calibration_inputs:
        Optional mapping of application name to the representative inputs
        calibration should sweep; applications without an entry calibrate
        on the session's default sample input.
    tuner:
        Optional :class:`repro.autotune.Tuner` sharing this controller's
        engine.  When given, ladders are seeded from the tuner's
        persistent :class:`~repro.autotune.db.TuningDB` instead of
        per-process calibration: a warm database restores the ladder with
        zero kernel evaluations, and the entries are bit-identical to an
        in-process calibration either way (pinned by
        ``tests/serve/test_controller.py``).
    """

    def __init__(
        self,
        engine,
        policy: ControllerPolicy | None = None,
        calibration_inputs: Mapping[str, Sequence] | None = None,
        tuner=None,
    ) -> None:
        self.engine = engine
        self.policy = policy or ControllerPolicy()
        self.calibration_inputs = dict(calibration_inputs or {})
        self.tuner = tuner
        self._ladders: dict[str, list[LadderEntry]] = {}
        self._streams: dict[tuple[str, float], _StreamState] = {}

    # ------------------------------------------------------------------
    # Calibration
    # ------------------------------------------------------------------
    def ladder(self, app_name: str) -> list[LadderEntry]:
        """The application's calibrated ladder (computed once, fastest first).

        The final rung is always the accurate configuration, so tightening
        terminates at a configuration that cannot violate any budget.
        With a :attr:`tuner`, the entries come from the tuning database
        (seeded on first use, replayed bit-identically afterwards).
        """
        cached = self._ladders.get(app_name)
        if cached is not None:
            return cached
        session = self.engine.session(
            app=app_name,
            error_budget=1.0,  # selection is ours; calibrate() just needs a budget
            safety_margin=self.policy.safety_margin,
        )
        entries = session.calibrate(
            self.calibration_inputs.get(app_name), tuner=self.tuner
        )
        ladder = [
            LadderEntry(
                config=entry.config,
                mean_error=entry.mean_error,
                speedup=entry.speedup,
            )
            for entry in entries  # already sorted fastest-first
        ]
        ladder.append(LadderEntry(config=ACCURATE_CONFIG, mean_error=0.0, speedup=1.0))
        self._ladders[app_name] = ladder
        return ladder

    def _stream(self, app_name: str, budget: float) -> _StreamState:
        if budget <= 0:
            raise TuningError(f"error budget must be positive, got {budget}")
        key = (app_name, budget)
        state = self._streams.get(key)
        if state is None:
            ladder = self.ladder(app_name)
            index = next(
                (
                    i
                    for i, entry in enumerate(ladder)
                    if entry.admissible(budget, self.policy.safety_margin)
                ),
                len(ladder) - 1,  # the accurate rung
            )
            state = self._streams[key] = _StreamState(index=index)
        return state

    # ------------------------------------------------------------------
    # Online operation
    # ------------------------------------------------------------------
    def choose(self, app_name: str, budget: float) -> ApproximationConfig:
        """The configuration the stream's next request should run with."""
        state = self._stream(app_name, budget)
        return self.ladder(app_name)[state.index].config

    def observe(self, app_name: str, budget: float, error: float) -> None:
        """Feed one request's measured error back into the stream's state."""
        state = self._stream(app_name, budget)
        ladder = self.ladder(app_name)
        alpha = self.policy.ewma_alpha
        state.ewma = error if state.ewma is None else alpha * error + (1 - alpha) * state.ewma
        state.since_switch += 1

        before = state.index
        if state.ewma > budget:
            self._tighten(state, ladder)
            if state.index != before:
                self._trace_decision("tighten", app_name, budget, ladder, state)
        elif (
            state.index > 0
            and state.since_switch >= self.policy.min_dwell
            and state.ewma < self.policy.loosen_headroom * budget
        ):
            self._loosen(state, ladder, budget)
            if state.index != before:
                self._trace_decision("loosen", app_name, budget, ladder, state)

    def _trace_decision(
        self,
        action: str,
        app_name: str,
        budget: float,
        ladder: list[LadderEntry],
        state: _StreamState,
    ) -> None:
        """Record a config-switch decision as an instant span (out-of-band)."""
        from ..obs.trace import get_tracer

        tracer = get_tracer()
        if tracer.enabled:
            tracer.point(
                f"controller.{action}",
                category="serve",
                app=app_name,
                budget=budget,
                config=ladder[state.index].config.label,
            )

    def _switch(self, state: _StreamState, index: int) -> None:
        state.index = index
        state.ewma = None  # fresh observation window for the new config
        state.since_switch = 0
        state.switches += 1

    def _tighten(self, state: _StreamState, ladder: list[LadderEntry]) -> None:
        """Step to the next more accurate rung (exists: the last rung is 0)."""
        current = ladder[state.index]
        for index in range(state.index + 1, len(ladder)):
            if ladder[index].mean_error < current.mean_error:
                self._switch(state, index)
                state.tightened += 1
                return

    def _loosen(
        self, state: _StreamState, ladder: list[LadderEntry], budget: float
    ) -> None:
        """Step back to the nearest faster admissible rung, if any."""
        for index in range(state.index - 1, -1, -1):
            if ladder[index].admissible(budget, self.policy.safety_margin):
                self._switch(state, index)
                state.loosened += 1
                return

    # ------------------------------------------------------------------
    def snapshot(self) -> dict:
        """Per-stream view of the controller's current decisions."""
        return {
            f"{app}@{budget:g}": {
                "config": self.ladder(app)[state.index].config.label,
                "switches": state.switches,
                "tightened": state.tightened,
                "loosened": state.loosened,
            }
            for (app, budget), state in sorted(self._streams.items())
        }

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"<OnlineController apps={sorted(self._ladders)} "
            f"streams={len(self._streams)}>"
        )
