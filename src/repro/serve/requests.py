"""Request/response value types of the serving subsystem.

A :class:`ServeRequest` is one unit of work submitted to the
:class:`~repro.serve.server.PerforationServer`: an application name, the
input, and the request's *quality contract* — the error budget the served
output must honour — plus scheduling hints (priority, latency budget).
Arrival times are virtual (trace time in milliseconds): the scheduler and
its determinism guarantees operate on trace time, while service times are
measured wall-clock.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

import numpy as np

from ..core.errors import ConfigurationError


@dataclass(frozen=True)
class ServeRequest:
    """One serving request.

    Parameters
    ----------
    request_id:
        Caller-chosen identifier; ties responses back to requests and
        breaks ordering ties deterministically.
    app:
        Registered application name (``"gaussian"``, ``"sobel3"``, ...).
    inputs:
        Application input (image array, :class:`~repro.data.hotspot.HotspotInput`, ...).
    error_budget:
        Maximum acceptable error of the served output (same metric as the
        application's evaluation metric).
    arrival_ms:
        Virtual arrival time in milliseconds of trace time.
    latency_budget_ms:
        Upper bound on how long the request may wait in a batch before it
        must be flushed; ``None`` defers to the scheduler's default delay.
    priority:
        Higher priorities are placed first within a micro-batch and flush
        earlier when a batch overflows.
    trace_id:
        Correlation id for observability spans (see :mod:`repro.obs`).
        Strictly out-of-band: it never influences scheduling, batching or
        execution.  The fleet front-end stamps one before the wire-id
        rewrite so worker-side spans can be merged back per request.
    """

    request_id: int
    app: str
    inputs: Any
    error_budget: float
    arrival_ms: float = 0.0
    latency_budget_ms: float | None = None
    priority: int = 0
    trace_id: str | None = None

    def __post_init__(self) -> None:
        if self.error_budget <= 0:
            raise ConfigurationError(
                f"request {self.request_id}: error budget must be positive, "
                f"got {self.error_budget}"
            )
        if self.latency_budget_ms is not None and self.latency_budget_ms < 0:
            raise ConfigurationError(
                f"request {self.request_id}: latency budget must be non-negative"
            )

    def sort_key(self) -> tuple:
        """Deterministic in-batch ordering: priority first, then FIFO."""
        return (-self.priority, self.arrival_ms, self.request_id)

    @property
    def trace_label(self) -> str:
        """The effective trace id: explicit, or derived from the request id."""
        return self.trace_id if self.trace_id is not None else f"r{self.request_id}"


@dataclass
class ServeResponse:
    """Outcome of one completed (or rejected) request."""

    request_id: int
    app: str
    #: Label of the configuration the batch ran with (``"Rows1:NN"``, ...);
    #: empty for rejected requests, which never ran.
    config_label: str
    #: Served output; ``None`` for rejected requests.
    output: np.ndarray | None
    #: Measured error of the *served* output (``None`` when monitoring is off).
    error: float | None
    #: Whether the served output honours the request's error budget
    #: (vacuously true when monitoring is off; false for rejected requests).
    within_budget: bool
    #: True when the request never executed and carries no output: either
    #: load-shed by admission control or failed by the fleet (worker loss,
    #: request-scoped worker error) — ``metadata["reason"]`` says which.
    rejected: bool = False
    #: True when the approximate output violated the budget and the server
    #: substituted the accurate output (strict mode).
    fallback: bool = False
    #: True when the output came from the serve result cache.
    cache_hit: bool = False
    #: Number of requests in the micro-batch this request ran in.
    batch_size: int = 1
    #: Virtual time spent queued before the batch was flushed.
    queue_delay_ms: float = 0.0
    #: Wall-clock execution time of the micro-batch (shared by its requests).
    service_time_ms: float = 0.0
    #: Virtual time at which the batch was flushed.
    completed_ms: float = 0.0
    metadata: dict = field(default_factory=dict)

    @property
    def latency_ms(self) -> float:
        """Queueing delay (virtual) plus batch service time (wall-clock)."""
        return self.queue_delay_ms + self.service_time_ms
