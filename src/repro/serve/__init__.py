"""``repro.serve`` — quality-aware batch serving of perforated kernels.

The serving subsystem turns the per-call session API into a service: a
stream of :class:`~repro.serve.requests.ServeRequest` objects (application,
input, error budget, priority, latency budget) is micro-batched by a
deterministic :class:`~repro.serve.scheduler.MicroBatchScheduler`, executed
as single batched vectorized launches
(:meth:`~repro.api.engine.PerforationEngine.run_compiled_batch`), and
steered by an :class:`~repro.serve.controller.OnlineController` that starts
from :meth:`Session.calibrate <repro.api.session.Session.calibrate>`
calibration and adapts the perforation configuration per application from
monitored quality feedback — tightening when the measured error drifts
above budget, loosening when there is headroom.  A bounded LRU result
cache (:mod:`repro.serve.cache`) short-circuits repeated inputs, and
:class:`~repro.serve.metrics.ServeMetrics` tracks throughput, latency
percentiles, cache hit rate and per-scheme selection counts.

.. code-block:: python

    from repro.serve import PerforationServer, ServeRequest

    server = PerforationServer(backend="vectorized", max_batch=8)
    responses = server.run_trace([
        ServeRequest(0, "gaussian", image_a, error_budget=0.025),
        ServeRequest(1, "gaussian", image_b, error_budget=0.025, arrival_ms=3.0),
        ServeRequest(2, "sobel3", image_a, error_budget=0.01, arrival_ms=5.0),
    ])
    print(server.metrics.describe())

The synthetic load generator (:mod:`repro.serve.loadgen`) and the
``python -m repro.experiments serve-bench`` harness exercise the subsystem
under mixed multi-application traffic; see ``docs/serving.md``.
"""

from .cache import ServeCacheStats, ServeResultCache
from .controller import ControllerPolicy, OnlineController
from .loadgen import ARRIVAL_PROCESSES, DEFAULT_SERVE_APPS, TraceSpec, generate_trace
from .metrics import LatencySummary, ServeMetrics
from .requests import ServeRequest, ServeResponse
from .scheduler import MicroBatch, MicroBatchScheduler
from .server import PerforationServer

__all__ = [
    "ARRIVAL_PROCESSES",
    "ControllerPolicy",
    "DEFAULT_SERVE_APPS",
    "LatencySummary",
    "MicroBatch",
    "MicroBatchScheduler",
    "OnlineController",
    "PerforationServer",
    "ServeCacheStats",
    "ServeMetrics",
    "ServeRequest",
    "ServeResponse",
    "ServeResultCache",
    "TraceSpec",
    "generate_trace",
]
