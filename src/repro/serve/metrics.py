"""Serving metrics: throughput, latency percentiles, selections, quality.

:class:`ServeMetrics` accumulates per-response observations and summarises
them for reports and tests.  Two kinds of quantities live here:

* **deterministic** counters — completed/violation/fallback/cache counts,
  per-application and per-configuration selection counts, batch-size
  histogram, measured errors.  These are pure functions of the trace and
  are what the determinism suite compares (:meth:`deterministic_snapshot`);
* **wall-clock** quantities — service times, latency percentiles,
  throughput — which vary run to run and are reported but never asserted
  bit-exactly.

Snapshots are *serializable* and *mergeable*: :meth:`ServeMetrics.to_dict`
round-trips through JSON (:meth:`ServeMetrics.from_dict`), and
:meth:`ServeMetrics.merge` folds another snapshot in — counters add,
distributions concatenate, ``worst_budget_fraction`` takes the maximum.
The fleet front-end (:mod:`repro.fleet`) uses this to aggregate per-worker
metrics into one fleet-level view; ``serve-bench`` uses it for JSON output.
"""

from __future__ import annotations

import math
from collections import Counter
from dataclasses import dataclass

from .requests import ServeResponse


def percentile(values: list[float], q: float) -> float:
    """Nearest-rank percentile (``q`` in [0, 1]) of ``values``."""
    if not values:
        return math.nan
    if not 0.0 <= q <= 1.0:
        raise ValueError(f"percentile q must be in [0, 1], got {q}")
    ordered = sorted(values)
    rank = max(1, math.ceil(q * len(ordered)))
    return ordered[rank - 1]


@dataclass(frozen=True)
class LatencySummary:
    """Distribution summary of one latency component (milliseconds)."""

    count: int
    mean_ms: float
    p50_ms: float
    p95_ms: float
    max_ms: float

    @classmethod
    def from_values(cls, values: list[float]) -> "LatencySummary":
        if not values:
            return cls(count=0, mean_ms=math.nan, p50_ms=math.nan, p95_ms=math.nan, max_ms=math.nan)
        return cls(
            count=len(values),
            mean_ms=sum(values) / len(values),
            p50_ms=percentile(values, 0.50),
            p95_ms=percentile(values, 0.95),
            max_ms=max(values),
        )

    def describe(self) -> str:
        if self.count == 0:
            return "n/a"
        return (
            f"mean {self.mean_ms:8.2f} ms  p50 {self.p50_ms:8.2f} ms  "
            f"p95 {self.p95_ms:8.2f} ms  max {self.max_ms:8.2f} ms"
        )


class ServeMetrics:
    """Accumulates the server's observable behaviour."""

    def __init__(self) -> None:
        self.completed = 0
        self.violations = 0  # budget violations measured pre-fallback
        self.fallbacks = 0
        self.cache_hits = 0
        self.shed = 0  # requests rejected by admission control (never served)
        self.failed = 0  # requests failed by the fleet (worker loss, worker error)
        self.worker_failures = 0  # fleet worker deaths (each respawn attempt counts)
        self.replayed = 0  # outstanding requests recovered by respawn-and-replay
        self.batches = 0
        self.per_app: Counter[str] = Counter()
        self.per_config: Counter[str] = Counter()
        self.batch_sizes: Counter[int] = Counter()
        self.queue_delays_ms: list[float] = []
        self.service_times_ms: list[float] = []
        self.latencies_ms: list[float] = []
        self.errors: list[float] = []
        #: max over completed requests of measured error / budget (served output).
        self.worst_budget_fraction = 0.0
        self.wall_time_s: float | None = None

    # ------------------------------------------------------------------
    def record_batch(self, size: int) -> None:
        self.batches += 1
        self.batch_sizes[size] += 1

    def record_response(self, response: ServeResponse, budget: float) -> None:
        self.completed += 1
        self.per_app[response.app] += 1
        self.per_config[response.config_label] += 1
        if response.fallback:
            self.fallbacks += 1
        if response.cache_hit:
            self.cache_hits += 1
        self.queue_delays_ms.append(response.queue_delay_ms)
        self.service_times_ms.append(response.service_time_ms)
        self.latencies_ms.append(response.latency_ms)
        if response.error is not None:
            self.errors.append(response.error)
            self.worst_budget_fraction = max(
                self.worst_budget_fraction, response.error / budget
            )
            if not response.within_budget:
                self.violations += 1

    def record_violation(self) -> None:
        """A pre-fallback budget violation (the served output was replaced)."""
        self.violations += 1

    def record_shed(self) -> None:
        """A request rejected by admission control (not counted as completed)."""
        self.shed += 1

    def record_failed(self) -> None:
        """A request failed by the fleet (worker loss or a request-scoped error).

        Failed requests, like shed ones, are never counted as completed;
        the fleet's exact accounting invariant is
        ``completed + shed + failed == len(trace)``.
        """
        self.failed += 1

    def finish(self, wall_time_s: float) -> None:
        self.wall_time_s = wall_time_s

    # ------------------------------------------------------------------
    @property
    def throughput_rps(self) -> float:
        if not self.wall_time_s:
            return math.nan
        return self.completed / self.wall_time_s

    @property
    def mean_batch_size(self) -> float:
        if not self.batches:
            return math.nan
        return sum(size * n for size, n in self.batch_sizes.items()) / self.batches

    @property
    def cache_hit_rate(self) -> float:
        return self.cache_hits / self.completed if self.completed else 0.0

    def latency_summary(self) -> LatencySummary:
        return LatencySummary.from_values(self.latencies_ms)

    def queue_delay_summary(self) -> LatencySummary:
        return LatencySummary.from_values(self.queue_delays_ms)

    def service_time_summary(self) -> LatencySummary:
        return LatencySummary.from_values(self.service_times_ms)

    # ------------------------------------------------------------------
    # Serialization and aggregation
    # ------------------------------------------------------------------
    def to_dict(self) -> dict:
        """JSON-serializable snapshot of everything the metrics hold.

        Batch-size keys become strings (JSON objects key by string);
        :meth:`from_dict` converts them back, so the round trip is exact —
        floats survive bit-identically through ``json`` (``repr`` round-trip).
        """
        return {
            "completed": self.completed,
            "violations": self.violations,
            "fallbacks": self.fallbacks,
            "cache_hits": self.cache_hits,
            "shed": self.shed,
            "failed": self.failed,
            "worker_failures": self.worker_failures,
            "replayed": self.replayed,
            "batches": self.batches,
            "per_app": dict(sorted(self.per_app.items())),
            "per_config": dict(sorted(self.per_config.items())),
            "batch_sizes": {str(size): n for size, n in sorted(self.batch_sizes.items())},
            "queue_delays_ms": list(self.queue_delays_ms),
            "service_times_ms": list(self.service_times_ms),
            "latencies_ms": list(self.latencies_ms),
            "errors": list(self.errors),
            "worst_budget_fraction": self.worst_budget_fraction,
            "wall_time_s": self.wall_time_s,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "ServeMetrics":
        """Rebuild a snapshot produced by :meth:`to_dict` (JSON round-trip safe)."""
        metrics = cls()
        metrics.completed = int(data.get("completed", 0))
        metrics.violations = int(data.get("violations", 0))
        metrics.fallbacks = int(data.get("fallbacks", 0))
        metrics.cache_hits = int(data.get("cache_hits", 0))
        metrics.shed = int(data.get("shed", 0))
        metrics.failed = int(data.get("failed", 0))
        metrics.worker_failures = int(data.get("worker_failures", 0))
        metrics.replayed = int(data.get("replayed", 0))
        metrics.batches = int(data.get("batches", 0))
        metrics.per_app = Counter({str(k): int(v) for k, v in data.get("per_app", {}).items()})
        metrics.per_config = Counter(
            {str(k): int(v) for k, v in data.get("per_config", {}).items()}
        )
        metrics.batch_sizes = Counter(
            {int(k): int(v) for k, v in data.get("batch_sizes", {}).items()}
        )
        metrics.queue_delays_ms = [float(v) for v in data.get("queue_delays_ms", [])]
        metrics.service_times_ms = [float(v) for v in data.get("service_times_ms", [])]
        metrics.latencies_ms = [float(v) for v in data.get("latencies_ms", [])]
        metrics.errors = [float(v) for v in data.get("errors", [])]
        metrics.worst_budget_fraction = float(data.get("worst_budget_fraction", 0.0))
        wall = data.get("wall_time_s")
        metrics.wall_time_s = None if wall is None else float(wall)
        return metrics

    def merge(self, other: "ServeMetrics") -> "ServeMetrics":
        """Fold ``other`` into this snapshot (in place; returns ``self``).

        Counters add, per-key counts add, distribution samples concatenate
        (in merge order, so a fixed worker order gives a deterministic
        result), ``worst_budget_fraction`` takes the maximum.  Wall times
        take the maximum too — merged processes ran concurrently, so the
        slowest one bounds the aggregate; an aggregator measuring its own
        wall clock should call :meth:`finish` afterwards to override.
        """
        self.completed += other.completed
        self.violations += other.violations
        self.fallbacks += other.fallbacks
        self.cache_hits += other.cache_hits
        self.shed += other.shed
        self.failed += other.failed
        self.worker_failures += other.worker_failures
        self.replayed += other.replayed
        self.batches += other.batches
        self.per_app.update(other.per_app)
        self.per_config.update(other.per_config)
        self.batch_sizes.update(other.batch_sizes)
        self.queue_delays_ms.extend(other.queue_delays_ms)
        self.service_times_ms.extend(other.service_times_ms)
        self.latencies_ms.extend(other.latencies_ms)
        self.errors.extend(other.errors)
        self.worst_budget_fraction = max(
            self.worst_budget_fraction, other.worst_budget_fraction
        )
        if other.wall_time_s is not None:
            self.wall_time_s = (
                other.wall_time_s
                if self.wall_time_s is None
                else max(self.wall_time_s, other.wall_time_s)
            )
        return self

    # ------------------------------------------------------------------
    def deterministic_snapshot(self) -> dict:
        """The trace-determined portion of the metrics (no wall-clock)."""
        return {
            "completed": self.completed,
            "violations": self.violations,
            "fallbacks": self.fallbacks,
            "cache_hits": self.cache_hits,
            "shed": self.shed,
            "failed": self.failed,
            "batches": self.batches,
            "per_app": dict(sorted(self.per_app.items())),
            "per_config": dict(sorted(self.per_config.items())),
            "batch_sizes": dict(sorted(self.batch_sizes.items())),
            "errors": list(self.errors),
            "worst_budget_fraction": self.worst_budget_fraction,
        }

    def describe(self) -> str:
        lines = [
            f"completed {self.completed} requests in {self.batches} batches "
            f"(mean batch {self.mean_batch_size:.2f})",
        ]
        if self.wall_time_s is not None:
            lines.append(
                f"throughput: {self.throughput_rps:.2f} req/s "
                f"({self.wall_time_s:.2f} s wall)"
            )
        lines.append(f"latency:     {self.latency_summary().describe()}")
        lines.append(f"queue delay: {self.queue_delay_summary().describe()}")
        lines.append(f"service:     {self.service_time_summary().describe()}")
        lines.append(
            f"quality: {self.violations} violations, {self.fallbacks} accurate "
            f"fallbacks, worst error/budget {self.worst_budget_fraction:.2f}"
        )
        if self.shed:
            lines.append(f"admission: {self.shed} requests shed (load control)")
        if self.worker_failures or self.replayed or self.failed:
            lines.append(
                f"resilience: {self.worker_failures} worker failures, "
                f"{self.replayed} requests replayed, {self.failed} failed"
            )
        lines.append(f"cache: {self.cache_hits} hits ({self.cache_hit_rate:.1%} of requests)")
        selections = ", ".join(
            f"{label}={count}" for label, count in sorted(self.per_config.items())
        )
        lines.append(f"selections: {selections or 'none'}")
        return "\n".join(lines)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<ServeMetrics completed={self.completed} batches={self.batches}>"
