"""Deterministic micro-batching scheduler.

Requests are grouped by *batch key* — application, configuration label,
backend and global size — because only such requests can share one batched
kernel launch (:meth:`repro.api.engine.PerforationEngine.run_compiled_batch`
requires one kernel, one configuration and identically sized inputs).

A per-key queue flushes when it reaches ``max_batch`` requests, or when its
oldest request's flush deadline (arrival plus the smaller of the request's
latency budget and the scheduler's ``max_delay_ms``) has passed.  All
decisions are functions of the submitted trace alone: same requests, same
submission order, same virtual clock ⇒ same batch composition, which the
determinism suite pins down.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..core.config import ApproximationConfig
from ..core.errors import ConfigurationError
from .requests import ServeRequest

#: (app name, config label, work-group shape, backend name, global size).
#: The work group is part of the key because the label omits it and
#: tile-aware reconstruction makes outputs work-group-dependent.
BatchKey = tuple[str, str, tuple[int, int], str, tuple[int, ...]]


@dataclass
class MicroBatch:
    """A flushed group of compatible requests, ready for one launch."""

    key: BatchKey
    config: ApproximationConfig
    requests: list[ServeRequest]
    #: Virtual time at which the batch was flushed.
    formed_ms: float

    @property
    def app(self) -> str:
        return self.key[0]

    def __len__(self) -> int:
        return len(self.requests)


@dataclass
class _PendingQueue:
    config: ApproximationConfig
    requests: list[ServeRequest] = field(default_factory=list)

    def oldest_deadline(self, max_delay_ms: float) -> float:
        return min(
            r.arrival_ms
            + (
                max_delay_ms
                if r.latency_budget_ms is None
                else min(max_delay_ms, r.latency_budget_ms)
            )
            for r in self.requests
        )


class MicroBatchScheduler:
    """Groups compatible requests into micro-batches.

    Parameters
    ----------
    max_batch:
        Maximum number of requests per micro-batch (1 disables batching).
    max_delay_ms:
        Default upper bound on how long a request may wait for batch-mates;
        a request's own ``latency_budget_ms`` can only shorten it.
    """

    def __init__(self, max_batch: int = 8, max_delay_ms: float = 50.0) -> None:
        if max_batch < 1:
            raise ConfigurationError(f"max_batch must be >= 1, got {max_batch}")
        if max_delay_ms < 0:
            raise ConfigurationError(f"max_delay_ms must be >= 0, got {max_delay_ms}")
        self.max_batch = max_batch
        self.max_delay_ms = max_delay_ms
        # Insertion-ordered: iteration order (and with it batch flush order)
        # is a pure function of the submission sequence.
        self._queues: dict[BatchKey, _PendingQueue] = {}
        self.submitted = 0

    # ------------------------------------------------------------------
    @property
    def pending(self) -> int:
        """Number of requests currently waiting in per-key queues."""
        return sum(len(q.requests) for q in self._queues.values())

    def submit(
        self,
        request: ServeRequest,
        config: ApproximationConfig,
        backend_name: str,
        global_size: tuple[int, ...],
    ) -> BatchKey:
        """Enqueue ``request`` under its batch key and return the key."""
        key: BatchKey = (
            request.app,
            config.label,
            config.work_group,
            backend_name,
            tuple(global_size),
        )
        queue = self._queues.get(key)
        if queue is None:
            queue = self._queues[key] = _PendingQueue(config=config)
        elif queue.config != config:  # pragma: no cover - defensive
            raise ConfigurationError(
                f"batch key {key} maps to config {queue.config}, got {config}"
            )
        queue.requests.append(request)
        self.submitted += 1
        return key

    # ------------------------------------------------------------------
    def _pop_batch(self, key: BatchKey, queue: _PendingQueue, now_ms: float) -> MicroBatch:
        """Pop up to ``max_batch`` requests, highest priority / oldest first."""
        queue.requests.sort(key=ServeRequest.sort_key)
        taken = queue.requests[: self.max_batch]
        queue.requests = queue.requests[self.max_batch :]
        return MicroBatch(key=key, config=queue.config, requests=taken, formed_ms=now_ms)

    def ready(self, now_ms: float) -> list[MicroBatch]:
        """Flush every queue that is full or past its oldest deadline.

        A deadline-triggered batch is stamped with the deadline itself, not
        ``now_ms``: the caller may only poll at arrival events, and the
        batch *should* have been flushed when its oldest deadline expired —
        otherwise reported queue delays could exceed the configured
        latency bounds arbitrarily on sparse traces.
        """
        batches: list[MicroBatch] = []
        for key in list(self._queues):
            queue = self._queues[key]
            while len(queue.requests) >= self.max_batch:
                batches.append(self._pop_batch(key, queue, now_ms))
            if queue.requests:
                deadline = queue.oldest_deadline(self.max_delay_ms)
                if deadline <= now_ms:
                    batches.append(self._pop_batch(key, queue, deadline))
            if not queue.requests:
                del self._queues[key]
        return batches

    def flush(self, now_ms: float) -> list[MicroBatch]:
        """Flush everything that is still queued (end of trace / shutdown).

        Batches whose oldest deadline already expired are stamped with that
        deadline (as in :meth:`ready`); the rest with ``now_ms``.
        """
        batches: list[MicroBatch] = []
        for key in list(self._queues):
            queue = self._queues[key]
            while queue.requests:
                formed = min(now_ms, queue.oldest_deadline(self.max_delay_ms))
                batches.append(self._pop_batch(key, queue, formed))
            del self._queues[key]
        return batches

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"<MicroBatchScheduler max_batch={self.max_batch} "
            f"max_delay_ms={self.max_delay_ms} pending={self.pending}>"
        )
