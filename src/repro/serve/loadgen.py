"""Synthetic load generator for the serving benchmark.

Builds deterministic mixed-application request traces: Poisson arrivals
(exponential inter-arrival times), a small pool of distinct inputs per
application (so the result cache sees realistic repetition), and per-request
error budgets and priorities drawn from configurable mixes.  Everything is
driven by one :class:`numpy.random.Generator` seed — the same
:class:`TraceSpec` always yields the same trace, which the scheduler
determinism suite relies on.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

import numpy as np

from ..core.errors import ConfigurationError
from .requests import ServeRequest

#: The mixed 5-application workload of the serving benchmark.
DEFAULT_SERVE_APPS: tuple[str, ...] = (
    "gaussian",
    "sobel3",
    "hotspot",
    "median",
    "inversion",
)


@dataclass(frozen=True)
class TraceSpec:
    """Parameters of one synthetic request trace."""

    apps: tuple[str, ...] = DEFAULT_SERVE_APPS
    requests: int = 40
    #: Square input size (width == height); must be divisible by the
    #: configurations' work-group dimensions (16 by default).
    size: int = 64
    #: Mean arrival rate of the Poisson process (requests per second).
    arrival_rate_hz: float = 100.0
    #: Error budgets requests draw from (uniformly).
    error_budgets: tuple[float, ...] = (0.01, 0.025, 0.05)
    #: Priorities requests draw from (uniformly).
    priorities: tuple[int, ...] = (0, 0, 0, 1)
    #: Distinct inputs per application (smaller pool ⇒ more cache hits).
    inputs_per_app: int = 3
    #: Optional per-request latency budget (milliseconds).
    latency_budget_ms: float | None = None
    seed: int = 2018

    def __post_init__(self) -> None:
        if self.requests < 1:
            raise ConfigurationError(f"requests must be >= 1, got {self.requests}")
        if not self.apps:
            raise ConfigurationError("apps must not be empty")
        if self.arrival_rate_hz <= 0:
            raise ConfigurationError(
                f"arrival_rate_hz must be positive, got {self.arrival_rate_hz}"
            )
        if self.inputs_per_app < 1:
            raise ConfigurationError(
                f"inputs_per_app must be >= 1, got {self.inputs_per_app}"
            )


def _input_pool(app: str, app_index: int, spec: TraceSpec) -> list[Any]:
    """Deterministic pool of distinct inputs for one application."""
    from ..data import hotspot_single, single_image
    from ..data.images import ImageClass

    pool: list[Any] = []
    for index in range(spec.inputs_per_app):
        # Stable per-(app, index) seed: no hash(), which is salted per process.
        seed = spec.seed * 1000 + app_index * 101 + index
        if app == "hotspot":
            pool.append(hotspot_single(size=spec.size, seed=seed))
        else:
            pool.append(single_image(ImageClass.NATURAL, size=spec.size, seed=seed))
    return pool


def generate_trace(spec: TraceSpec) -> list[ServeRequest]:
    """Generate the request trace described by ``spec`` (same spec ⇒ same trace)."""
    rng = np.random.default_rng(spec.seed)
    pools = {app: _input_pool(app, i, spec) for i, app in enumerate(spec.apps)}

    requests: list[ServeRequest] = []
    now_ms = 0.0
    for request_id in range(spec.requests):
        now_ms += float(rng.exponential(1000.0 / spec.arrival_rate_hz))
        app = spec.apps[int(rng.integers(len(spec.apps)))]
        pool = pools[app]
        requests.append(
            ServeRequest(
                request_id=request_id,
                app=app,
                inputs=pool[int(rng.integers(len(pool)))],
                error_budget=float(
                    spec.error_budgets[int(rng.integers(len(spec.error_budgets)))]
                ),
                arrival_ms=now_ms,
                latency_budget_ms=spec.latency_budget_ms,
                priority=int(spec.priorities[int(rng.integers(len(spec.priorities)))]),
            )
        )
    return requests
