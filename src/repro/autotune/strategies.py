"""Pluggable, seeded search strategies.

Every strategy drives evaluations through a :class:`TuningTask` — the
evaluation context that wraps a
:class:`~repro.api.engine.PerforationEngine`, one application and one
input.  The task owns

* the validity-filtered candidate list (deterministic enumeration order,
  from the :class:`~repro.autotune.space.SearchSpace`);
* *multi-fidelity* evaluation: a fidelity ``f < 1`` measures the error on
  an input downscaled by ``1/f`` per axis (cheap screening) while the
  speedup always comes from the full-size timing model, so screening
  scores are comparable across fidelities;
* memoization (a configuration/fidelity pair is evaluated once) and the
  evaluation budget;
* batched submission to the engine's worker pool.

Determinism contract: a strategy proposes *batches*; the task evaluates a
batch through :meth:`PerforationEngine._map`, which preserves order, and
every evaluation is a pure function of its inputs — so with a fixed seed
the evaluation sequence and the resulting front are identical across runs
and across ``workers`` settings (the PR 1 parallel == serial guarantee).
All tie-breaks sort on content keys, never on hashes or dict order.

Strategies
----------
``grid``
    Exhaustive full-fidelity sweep of the candidate list (the paper's
    Section 6.3/6.4 approach; the reference the others are measured
    against).
``random``
    Seeded uniform sample of the candidate list, evaluated at full
    fidelity.
``hill-climb``
    Seeded multi-start local search: from each start, repeatedly evaluate
    the single-axis neighbors of the current Pareto archive until the
    archive stops improving or the budget runs out.
``successive-halving``
    Multi-fidelity screening: evaluate every candidate on a small input,
    promote the best non-dominated layers to the next fidelity, and only
    the survivors to a full-size evaluation.
"""

from __future__ import annotations

import abc
import math
import random
from dataclasses import dataclass
from typing import Sequence

import numpy as np

from ..core.config import ApproximationConfig
from ..core.errors import TuningError
from ..core.pareto import pareto_front
from ..core.quality import compute_error
from .space import SearchSpace, config_key

#: Screening fidelities tried by the multi-fidelity strategies, coarsest
#: first (fraction of the full linear input size).
SCREENING_FRACTIONS: tuple[float, ...] = (0.25, 0.5)


@dataclass(frozen=True)
class Observation:
    """One evaluated (configuration, fidelity) pair."""

    config: ApproximationConfig
    fidelity: float
    error: float
    speedup: float
    runtime_s: float

    @property
    def is_full_fidelity(self) -> bool:
        return self.fidelity >= 1.0

    @property
    def key(self) -> str:
        return config_key(self.config)

    def describe(self) -> str:
        return (
            f"{self.config.label:<14s} wg={self.config.work_group!s:<9s} "
            f"fid={self.fidelity:4.2f} error={self.error * 100:6.2f}%  "
            f"speedup={self.speedup:5.2f}x"
        )


def _downscale(inputs, step: int):
    """``inputs`` subsampled by ``step`` per axis, or ``None`` if unsupported."""
    if isinstance(inputs, np.ndarray):
        if inputs.ndim < 2 or inputs.shape[0] % step or inputs.shape[1] % step:
            return None
        return np.ascontiguousarray(inputs[::step, ::step])
    if isinstance(inputs, (tuple, list)):
        scaled = [_downscale(part, step) for part in inputs]
        if any(part is None for part in scaled):
            return None
        return type(inputs)(scaled)
    return None


class TuningTask:
    """Evaluation context of one (engine, application, input) tuning run."""

    def __init__(
        self,
        engine,
        app,
        inputs,
        space: SearchSpace,
        max_evals: int | None = None,
    ) -> None:
        self.engine = engine
        self.app = engine.resolve_app(app)
        self.inputs = inputs
        self.space = space
        if max_evals is not None and max_evals < 1:
            raise TuningError(f"max_evals must be positive, got {max_evals}")
        self.max_evals = max_evals
        self.observations: list[Observation] = []
        self._memo: dict[tuple[str, float], Observation] = {}
        self.full_size = self.app.global_size(inputs)
        self._scaled: dict[float, object] = {1.0: inputs}
        self._candidates: list[ApproximationConfig] | None = None

    # ------------------------------------------------------------------
    # Candidates and fidelities
    # ------------------------------------------------------------------
    def candidates(self) -> list[ApproximationConfig]:
        """Validity-filtered candidate list (deterministic order, cached)."""
        if self._candidates is None:
            self._candidates = self.space.configurations(
                halo=self.app.halo,
                global_size=self.full_size,
                device=self.engine.device,
            )
        return self._candidates

    def scaled_inputs(self, fidelity: float):
        """The input downscaled to ``fidelity``, or ``None`` if unsupported."""
        if fidelity not in self._scaled:
            step = round(1.0 / fidelity)
            scaled = _downscale(self.inputs, step) if step > 1 else None
            self._scaled[fidelity] = scaled
        return self._scaled[fidelity]

    def screening_fidelities(self) -> tuple[float, ...]:
        """Usable screening fidelities, coarsest first (may be empty)."""
        return tuple(
            fraction
            for fraction in SCREENING_FRACTIONS
            if self.scaled_inputs(fraction) is not None
        )

    def valid_at(self, config: ApproximationConfig, fidelity: float) -> bool:
        """Whether ``config`` can be evaluated at ``fidelity``.

        Full fidelity is always valid (the candidate list already applies
        the launch rules).  Screening runs the sampler-based NumPy path,
        which tolerates work groups that do not divide the downscaled
        input — tiles simply clamp at the edge — so a screening fidelity
        is valid for *every* candidate whenever a downscaled input exists.
        """
        if fidelity >= 1.0:
            return True
        return self.scaled_inputs(fidelity) is not None

    # ------------------------------------------------------------------
    # Budget
    # ------------------------------------------------------------------
    @property
    def evaluations(self) -> int:
        """Total evaluations spent (all fidelities)."""
        return len(self.observations)

    @property
    def full_evaluations(self) -> int:
        """Full-fidelity evaluations spent (the expensive kind)."""
        return sum(1 for o in self.observations if o.is_full_fidelity)

    @property
    def exhausted(self) -> bool:
        return self.max_evals is not None and self.evaluations >= self.max_evals

    def _remaining(self) -> int | None:
        if self.max_evals is None:
            return None
        return max(0, self.max_evals - self.evaluations)

    # ------------------------------------------------------------------
    # Evaluation
    # ------------------------------------------------------------------
    def evaluate_batch(
        self, configs: Sequence[ApproximationConfig], fidelity: float = 1.0
    ) -> list[Observation]:
        """Evaluate ``configs`` at ``fidelity`` as one ordered parallel batch.

        Already-evaluated pairs are served from the memo without consuming
        budget; the rest run on the engine's worker pool in submission
        order.  Returns one observation per *requested* config (memo hits
        included), truncated when the budget runs out.
        """
        results: list[Observation] = []
        fresh: list[ApproximationConfig] = []
        fresh_keys: set[str] = set()
        remaining = self._remaining()
        for config in configs:
            memo_key = (config_key(config), fidelity)
            hit = self._memo.get(memo_key)
            if hit is not None:
                results.append(hit)
                continue
            if memo_key[0] in fresh_keys:
                continue  # duplicate within the batch
            if remaining is not None and len(fresh) >= remaining:
                break  # budget exhausted: drop the tail deterministically
            fresh_keys.add(memo_key[0])
            fresh.append(config)

        if fresh:
            if fidelity >= 1.0:
                evaluated = self._evaluate_full(fresh)
            else:
                evaluated = self._evaluate_screening(fresh, fidelity)
            for observation in evaluated:
                self._memo[(observation.key, fidelity)] = observation
                self.observations.append(observation)
            results.extend(evaluated)
        return results

    def _evaluate_full(self, configs: Sequence[ApproximationConfig]) -> list[Observation]:
        evaluations = self.engine.evaluate_many(self.app, self.inputs, configs)
        return [
            Observation(
                config=result.config,
                fidelity=1.0,
                error=result.error,
                speedup=result.speedup,
                runtime_s=result.approx_time_s,
            )
            for result in evaluations
        ]

    def _evaluate_screening(
        self, configs: Sequence[ApproximationConfig], fidelity: float
    ) -> list[Observation]:
        """Error on the downscaled input; speedup from the full-size model."""
        scaled = self.scaled_inputs(fidelity)
        if scaled is None:
            raise TuningError(f"no screening input available at fidelity {fidelity}")
        reference = self.engine.reference(self.app, scaled)
        baseline_s = self.engine.baseline_timing(self.app, self.full_size).total_time_s

        def one(config: ApproximationConfig) -> Observation:
            approximate = self.app.approximate(scaled, config)
            error = compute_error(reference, approximate, self.app.error_metric)
            approx_s = self.engine.timing(self.app, config, self.full_size).total_time_s
            return Observation(
                config=config,
                fidelity=fidelity,
                error=error,
                speedup=baseline_s / approx_s,
                runtime_s=approx_s,
            )

        return self.engine._map(one, list(configs))


# ---------------------------------------------------------------------------
# Strategy base and helpers
# ---------------------------------------------------------------------------
def _sort_key(observation: Observation) -> tuple:
    """Deterministic content-based ordering of observations."""
    return (-observation.speedup, observation.error, observation.key)


def nondominated_layers(observations: Sequence[Observation]) -> list[list[Observation]]:
    """Non-dominated sorting: layer 0 is the Pareto front, layer 1 the front
    of the rest, and so on.  Order within a layer follows the input order
    (which strategies keep deterministic)."""
    remaining = list(observations)
    layers: list[list[Observation]] = []
    while remaining:
        front = pareto_front(remaining)
        members = {id(o) for o in front}
        # pareto_front collapses duplicate (speedup, error) pairs to one
        # witness; the duplicates belong to the same layer, not the next.
        keys = {(o.speedup, o.error) for o in front}
        layer = [o for o in remaining if id(o) in members or (o.speedup, o.error) in keys]
        layers.append(layer)
        remaining = [o for o in remaining if o not in layer]
    return layers


class Strategy(abc.ABC):
    """A seeded search procedure over one :class:`TuningTask`."""

    name: str = "strategy"

    @abc.abstractmethod
    def tune(self, task: TuningTask, rng: random.Random) -> None:
        """Drive evaluations on ``task`` (results live in its observations)."""

    def describe(self) -> dict:
        """JSON-serializable identity (part of the tuning-database key)."""
        return {"name": self.name}

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<{type(self).__name__} {self.describe()}>"


class GridStrategy(Strategy):
    """Exhaustive full-fidelity sweep — the paper's reference procedure."""

    name = "grid"

    def tune(self, task: TuningTask, rng: random.Random) -> None:
        task.evaluate_batch(task.candidates(), 1.0)


class RandomStrategy(Strategy):
    """Seeded uniform sample of the candidate list at full fidelity."""

    name = "random"

    def __init__(self, fraction: float = 0.5) -> None:
        if not 0.0 < fraction <= 1.0:
            raise TuningError(f"sample fraction must be in (0, 1], got {fraction}")
        self.fraction = fraction

    def describe(self) -> dict:
        return {"name": self.name, "fraction": self.fraction}

    def tune(self, task: TuningTask, rng: random.Random) -> None:
        candidates = task.candidates()
        count = max(1, math.ceil(len(candidates) * self.fraction))
        if task.max_evals is not None:
            count = min(count, task.max_evals)
        sample = rng.sample(candidates, min(count, len(candidates)))
        task.evaluate_batch(sample, 1.0)


class HillClimbStrategy(Strategy):
    """Seeded multi-start local search over the space's single-axis moves.

    Maintains a Pareto archive of the full-fidelity observations; each
    round evaluates the unexplored neighbors of every archive member (one
    deterministic batch) and stops when a round discovers no archive
    change or the budget runs out.
    """

    name = "hill-climb"

    def __init__(self, starts: int = 4, max_rounds: int = 32) -> None:
        if starts < 1:
            raise TuningError(f"starts must be positive, got {starts}")
        if max_rounds < 1:
            raise TuningError(f"max_rounds must be positive, got {max_rounds}")
        self.starts = starts
        self.max_rounds = max_rounds

    def describe(self) -> dict:
        return {"name": self.name, "starts": self.starts, "max_rounds": self.max_rounds}

    def tune(self, task: TuningTask, rng: random.Random) -> None:
        candidates = task.candidates()
        if not candidates:
            return
        starts = rng.sample(candidates, min(self.starts, len(candidates)))
        task.evaluate_batch(starts, 1.0)
        evaluated = {config_key(c) for c in starts}

        for _ in range(self.max_rounds):
            if task.exhausted:
                break
            archive = pareto_front(
                [o for o in task.observations if o.is_full_fidelity]
            )
            batch: list[ApproximationConfig] = []
            for observation in sorted(archive, key=_sort_key):
                for neighbor in task.space.neighbors(
                    observation.config,
                    halo=task.app.halo,
                    global_size=task.full_size,
                    device=task.engine.device,
                ):
                    key = config_key(neighbor)
                    if key not in evaluated:
                        evaluated.add(key)
                        batch.append(neighbor)
            if not batch:
                break
            task.evaluate_batch(batch, 1.0)


class SuccessiveHalvingStrategy(Strategy):
    """Multi-fidelity screening with non-dominated promotion.

    Every candidate is first evaluated at the coarsest fidelity its
    work-group shape admits (downscaled inputs keep the space's
    divisibility rules; candidates whose shape cannot tile a small input
    enter at the first rung where it can).  After each screening rung the
    pool is non-dominated sorted on (speedup, screened error) and whole
    layers are promoted until at least ``1/eta`` of the pool survives;
    only the final survivors are evaluated at full size.
    """

    name = "successive-halving"

    def __init__(self, eta: float = 2.0) -> None:
        if eta <= 1.0:
            raise TuningError(f"eta must be > 1, got {eta}")
        self.eta = eta

    def describe(self) -> dict:
        return {"name": self.name, "eta": self.eta}

    def tune(self, task: TuningTask, rng: random.Random) -> None:
        fidelities = list(task.screening_fidelities()) + [1.0]
        candidates = task.candidates()

        # Assign each candidate its earliest admissible rung.
        rung_of: dict[str, int] = {}
        for config in candidates:
            for rung, fidelity in enumerate(fidelities):
                if task.valid_at(config, fidelity):
                    rung_of[config_key(config)] = rung
                    break

        pool: list[ApproximationConfig] = []
        for rung, fidelity in enumerate(fidelities):
            pool = pool + [
                c for c in candidates if rung_of[config_key(c)] == rung
            ]
            observations = task.evaluate_batch(pool, fidelity)
            if fidelity >= 1.0 or task.exhausted:
                break
            quota = max(1, math.ceil(len(pool) / self.eta))
            survivors: list[Observation] = []
            for layer in nondominated_layers(observations):
                survivors.extend(layer)
                if len(survivors) >= quota:
                    break
            pool = [o.config for o in survivors]


# ---------------------------------------------------------------------------
# Strategy registry
# ---------------------------------------------------------------------------
STRATEGIES: dict[str, type[Strategy]] = {
    GridStrategy.name: GridStrategy,
    RandomStrategy.name: RandomStrategy,
    HillClimbStrategy.name: HillClimbStrategy,
    SuccessiveHalvingStrategy.name: SuccessiveHalvingStrategy,
}


def available_strategies() -> list[str]:
    return sorted(STRATEGIES)


def resolve_strategy(strategy: Strategy | str | None) -> Strategy:
    """Resolve a strategy instance or registered name (``None`` -> default)."""
    if strategy is None:
        return SuccessiveHalvingStrategy()
    if isinstance(strategy, Strategy):
        return strategy
    cls = STRATEGIES.get(strategy)
    if cls is None:
        raise TuningError(
            f"unknown strategy {strategy!r}; available: {', '.join(available_strategies())}"
        )
    return cls()
