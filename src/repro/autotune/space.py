"""Declarative search-space model for the autotuner.

The paper's evaluation (Sections 6.3–6.4) explores a hand-picked ladder of
four configurations across ten work-group shapes.  The autotuner searches
the *full product space*

    scheme (incl. perforation rate) x reconstruction x work-group shape

which is strictly larger: the default space adds a more aggressive row
rate (``rows4``), both column rates the paper discusses as the Paraprox
analogue, and linear interpolation wherever it is defined.

A :class:`SearchSpace` is declarative — it names the axes; the concrete
candidate list for one application/input/device is produced by
:meth:`SearchSpace.configurations`, which applies the same validity rules
:class:`~repro.core.config.ApproximationConfig` enforces at evaluation
time (stencil scheme needs a halo, work groups must divide the global
size and fit the device).  Candidate order is deterministic (scheme-major,
then reconstruction, then work-group), which the seeded strategies rely
on for reproducible evaluation sequences.

Spaces are content-addressed: :meth:`SearchSpace.signature` hashes the
axes together with :data:`SPACE_VERSION`, and the signature keys the
persistent tuning database — bumping the version or changing an axis
simply misses, it can never alias stale records.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass
from typing import Iterable

from ..clsim.device import Device
from ..core.config import WORK_GROUP_CANDIDATES, ApproximationConfig
from ..core.errors import ConfigurationError
from ..core.reconstruction import LINEAR_INTERPOLATION, NEAREST_NEIGHBOR
from ..core.schemes import (
    KIND_COLUMNS,
    KIND_NONE,
    KIND_RANDOM,
    KIND_ROWS,
    KIND_STENCIL,
    ColumnPerforation,
    PerforationScheme,
    RandomPerforation,
    RowPerforation,
    StencilPerforation,
)

#: Version of the space model; part of every space signature, so database
#: records produced under an older model can never be mistaken for current.
SPACE_VERSION = 1


# ---------------------------------------------------------------------------
# Scheme / configuration (de)serialization — shared with the tuning database.
# ---------------------------------------------------------------------------
def scheme_to_dict(scheme: PerforationScheme) -> dict:
    """JSON-serializable description of a scheme (round-trips exactly)."""
    kind = scheme.kind
    if kind == KIND_NONE:
        return {"kind": kind}
    if kind in (KIND_ROWS, KIND_COLUMNS):
        return {"kind": kind, "step": scheme.step}  # type: ignore[attr-defined]
    if kind == KIND_STENCIL:
        return {"kind": kind}
    if kind == KIND_RANDOM:
        return {
            "kind": kind,
            "fraction": scheme.fraction,  # type: ignore[attr-defined]
            "seed": scheme.seed,  # type: ignore[attr-defined]
        }
    raise ConfigurationError(f"cannot serialize scheme kind {kind!r}")


def scheme_from_dict(data: dict) -> PerforationScheme:
    """Inverse of :func:`scheme_to_dict`."""
    kind = data.get("kind")
    if kind == KIND_NONE:
        return PerforationScheme()
    if kind == KIND_ROWS:
        return RowPerforation(step=int(data["step"]))
    if kind == KIND_COLUMNS:
        return ColumnPerforation(step=int(data["step"]))
    if kind == KIND_STENCIL:
        return StencilPerforation()
    if kind == KIND_RANDOM:
        return RandomPerforation(
            fraction=float(data["fraction"]), seed=int(data["seed"])
        )
    raise ConfigurationError(f"cannot deserialize scheme kind {kind!r}")


def config_to_dict(config: ApproximationConfig) -> dict:
    """JSON-serializable description of a configuration (round-trips exactly)."""
    return {
        "scheme": scheme_to_dict(config.scheme),
        "reconstruction": config.reconstruction,
        "work_group": list(config.work_group),
    }


def config_from_dict(data: dict) -> ApproximationConfig:
    """Inverse of :func:`config_to_dict`."""
    wx, wy = data["work_group"]
    return ApproximationConfig(
        scheme=scheme_from_dict(data["scheme"]),
        reconstruction=data["reconstruction"],
        work_group=(int(wx), int(wy)),
    )


def config_key(config: ApproximationConfig) -> str:
    """Deterministic identity string of one configuration.

    Thin alias of :attr:`ApproximationConfig.key` — unlike the figure
    label it distinguishes work-group shapes, reconstruction variants and
    scheme parameters (including a random scheme's fraction *and* seed).
    """
    return config.key


# ---------------------------------------------------------------------------
# The space itself
# ---------------------------------------------------------------------------
@dataclass(frozen=True)
class SearchSpace:
    """Axes of the configuration space the tuner explores.

    ``schemes`` are perforation-scheme *instances* (each row/column rate is
    its own scheme, so the perforation-rate axis is folded into the scheme
    axis exactly as :mod:`repro.core.schemes` models it).
    """

    schemes: tuple[PerforationScheme, ...]
    reconstructions: tuple[str, ...] = (NEAREST_NEIGHBOR, LINEAR_INTERPOLATION)
    work_groups: tuple[tuple[int, int], ...] = WORK_GROUP_CANDIDATES

    def __post_init__(self) -> None:
        if not self.schemes:
            raise ConfigurationError("a search space needs at least one scheme")
        if not self.reconstructions:
            raise ConfigurationError("a search space needs at least one reconstruction")
        if not self.work_groups:
            raise ConfigurationError("a search space needs at least one work group")

    # ------------------------------------------------------------------
    def configurations(
        self,
        halo: int = 0,
        global_size: tuple[int, int] | None = None,
        device: Device | None = None,
    ) -> list[ApproximationConfig]:
        """The valid candidate list, in deterministic enumeration order.

        Validity reuses the :class:`ApproximationConfig` rules: the stencil
        scheme needs a kernel with a halo (and is always reconstructed NN,
        so its reconstruction variants collapse to one candidate), work
        groups must divide ``global_size`` (when known) and fit within the
        device's work-group limit (when known).
        """
        configs: list[ApproximationConfig] = []
        seen: set[str] = set()
        for scheme in self.schemes:
            if scheme.kind == KIND_NONE:
                continue  # the accurate baseline is not a tuning candidate
            if scheme.requires_halo() and halo == 0:
                continue
            for reconstruction in self.reconstructions:
                if scheme.kind == KIND_STENCIL and reconstruction != NEAREST_NEIGHBOR:
                    # The paper always reconstructs the stencil scheme with
                    # NN; other techniques alias the same kernel.
                    continue
                for work_group in self.work_groups:
                    if not self.work_group_valid(work_group, global_size, device):
                        continue
                    config = ApproximationConfig(
                        scheme=scheme,
                        reconstruction=reconstruction,
                        work_group=work_group,
                    )
                    key = config_key(config)
                    if key in seen:
                        continue
                    seen.add(key)
                    configs.append(config)
        return configs

    @staticmethod
    def work_group_valid(
        work_group: tuple[int, int],
        global_size: tuple[int, int] | None,
        device: Device | None,
    ) -> bool:
        wx, wy = work_group
        if device is not None and wx * wy > device.max_work_group_size:
            return False
        if global_size is not None:
            width, height = global_size
            if width % wx or height % wy:
                return False
        return True

    # ------------------------------------------------------------------
    def neighbors(
        self,
        config: ApproximationConfig,
        halo: int = 0,
        global_size: tuple[int, int] | None = None,
        device: Device | None = None,
    ) -> list[ApproximationConfig]:
        """Single-axis moves from ``config``, for the local-search strategy.

        A neighbor changes exactly one axis: the scheme to an adjacent one
        in the space's scheme order, the reconstruction to another
        technique, or the work group to an adjacent candidate shape.  Only
        valid configurations are returned, in deterministic order.
        """
        valid = {
            config_key(c): c
            for c in self.configurations(halo, global_size, device)
        }
        moves: list[ApproximationConfig] = []

        def consider(candidate: ApproximationConfig) -> None:
            key = config_key(candidate)
            if key != config_key(config) and key in valid:
                moves.append(valid[key])

        scheme_keys = [s.name for s in self.schemes]
        if config.scheme.name in scheme_keys:
            index = scheme_keys.index(config.scheme.name)
            for delta in (-1, 1):
                neighbor = index + delta
                if 0 <= neighbor < len(self.schemes):
                    consider(
                        ApproximationConfig(
                            scheme=self.schemes[neighbor],
                            reconstruction=config.reconstruction,
                            work_group=config.work_group,
                        )
                    )
        for reconstruction in self.reconstructions:
            if reconstruction != config.reconstruction:
                consider(
                    ApproximationConfig(
                        scheme=config.scheme,
                        reconstruction=reconstruction,
                        work_group=config.work_group,
                    )
                )
        if config.work_group in self.work_groups:
            index = self.work_groups.index(config.work_group)
            for delta in (-1, 1):
                neighbor = index + delta
                if 0 <= neighbor < len(self.work_groups):
                    consider(
                        ApproximationConfig(
                            scheme=config.scheme,
                            reconstruction=config.reconstruction,
                            work_group=self.work_groups[neighbor],
                        )
                    )
        # Deduplicate while preserving order (axes can propose the same move).
        unique: dict[str, ApproximationConfig] = {}
        for move in moves:
            unique.setdefault(config_key(move), move)
        return list(unique.values())

    # ------------------------------------------------------------------
    def describe(self) -> dict:
        """Canonical JSON-serializable description (basis of the signature)."""
        return {
            "version": SPACE_VERSION,
            "schemes": [scheme_to_dict(s) for s in self.schemes],
            "reconstructions": list(self.reconstructions),
            "work_groups": [list(wg) for wg in self.work_groups],
        }

    def signature(self) -> str:
        """Content hash of the space (includes :data:`SPACE_VERSION`)."""
        canonical = json.dumps(self.describe(), sort_keys=True)
        return hashlib.sha256(canonical.encode("utf-8")).hexdigest()

    def size(self, halo: int = 0) -> int:
        """Number of candidates before input/device filtering."""
        return len(self.configurations(halo))

    # ------------------------------------------------------------------
    @classmethod
    def from_configs(cls, configs: Iterable[ApproximationConfig]) -> "SearchSpace":
        """A space spanning exactly the axes of an explicit candidate list.

        Used for calibration seeding: the session's default configurations
        become a (small) space whose signature keys the tuning database.
        """
        configs = list(configs)
        if not configs:
            raise ConfigurationError("from_configs needs at least one configuration")
        schemes: dict[str, PerforationScheme] = {}
        reconstructions: dict[str, None] = {}
        work_groups: dict[tuple[int, int], None] = {}
        for config in configs:
            schemes.setdefault(config.scheme.name, config.scheme)
            reconstructions.setdefault(config.reconstruction)
            work_groups.setdefault(tuple(config.work_group))
        return cls(
            schemes=tuple(schemes.values()),
            reconstructions=tuple(reconstructions),
            work_groups=tuple(work_groups),
        )


def default_space() -> SearchSpace:
    """The default autotuning space — strictly larger than the paper's ladder.

    Row rates 50%/75%/87.5% (``rows1``/``rows2``/``rows4``), both column
    rates (the Paraprox analogue the paper argues against), the stencil
    scheme, and both reconstruction techniques, across all ten work-group
    candidates of Figure 9.
    """
    return SearchSpace(
        schemes=(
            RowPerforation(step=2),
            RowPerforation(step=4),
            RowPerforation(step=8),
            ColumnPerforation(step=2),
            ColumnPerforation(step=4),
            StencilPerforation(),
        ),
    )
