"""``repro.autotune`` — adaptive multi-fidelity autotuning.

The paper finds good perforation configurations by exhaustively sweeping
schemes x reconstruction x work-group sizes and keeping the Pareto front
(Sections 6.3–6.4).  This package turns that into a first-class subsystem:

* :mod:`repro.autotune.space` — a declarative search-space model over the
  full scheme x perforation-rate x reconstruction x work-group product,
  strictly larger than the paper's hand-picked ladder;
* :mod:`repro.autotune.strategies` — pluggable seeded strategies (grid,
  random, local hill-climb, successive-halving with multi-fidelity
  screening on downscaled inputs), all driving evaluations through the
  :class:`~repro.api.engine.PerforationEngine` worker pool and caches;
* :mod:`repro.autotune.db` — a persistent cross-session tuning database
  keyed by (app, device, backend, input signature, space version);
* :mod:`repro.autotune.tuner` — the :class:`Tuner` facade producing
  incremental Pareto fronts and budget-indexed ladders.

.. code-block:: python

    from repro.api import PerforationEngine
    from repro.autotune import Tuner

    engine = PerforationEngine(workers="auto")
    tuner = Tuner(engine, strategy="successive-halving", db="~/.cache/repro-tuning")
    result = tuner.tune("gaussian", image)
    front = result.front()                       # Pareto-optimal configs
    config = result.best_for_budget(0.01)        # fastest within 1% error

    # DB-backed session calibration (zero evaluations when warm):
    session = engine.session("gaussian").autotune(0.01, tuner=tuner)

See ``docs/autotuning.md`` for the full guide.
"""

from __future__ import annotations

from .db import TuningDB, default_db, input_signature, resolve_db
from .space import SearchSpace, default_space
from .strategies import (
    GridStrategy,
    HillClimbStrategy,
    Observation,
    RandomStrategy,
    Strategy,
    SuccessiveHalvingStrategy,
    TuningTask,
    available_strategies,
    resolve_strategy,
)
from .tuner import Tuner, TuningResult

__all__ = [
    "GridStrategy",
    "HillClimbStrategy",
    "Observation",
    "RandomStrategy",
    "SearchSpace",
    "Strategy",
    "SuccessiveHalvingStrategy",
    "Tuner",
    "TuningDB",
    "TuningResult",
    "TuningTask",
    "available_strategies",
    "default_db",
    "default_space",
    "input_signature",
    "resolve_db",
    "resolve_strategy",
]
