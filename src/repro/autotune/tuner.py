"""The :class:`Tuner` facade.

Ties the subsystem together: resolve the search space, run a seeded
strategy over a :class:`~repro.autotune.strategies.TuningTask`, persist
the outcome in the :class:`~repro.autotune.db.TuningDB`, and answer the
questions callers actually ask — the Pareto front, how it grew while the
search ran, and budget-indexed configuration ladders.

Two entry points:

* :meth:`Tuner.tune` — full search over the space; returns a
  :class:`TuningResult`.
* :meth:`Tuner.calibration_entries` — the
  :meth:`Session.calibrate <repro.api.session.Session.calibrate>` fast
  path: the same per-configuration error/speedup statistics, computed
  through the same engine primitives (so the floats are bit-identical to
  an in-process calibration) but persisted in the database — a warm
  database answers with **zero** evaluations.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Iterable, Iterator, Sequence

import numpy as np

from ..core.config import ApproximationConfig
from ..core.errors import TuningError
from ..core.pareto import pareto_front
from .db import TuningDB, input_signature, resolve_db, tuning_key
from .space import (
    SearchSpace,
    config_from_dict,
    config_key,
    config_to_dict,
    default_space,
)
from .strategies import Observation, Strategy, TuningTask, resolve_strategy


@dataclass
class TuningResult:
    """Outcome of one tuning run (fresh or replayed from the database)."""

    app_name: str
    strategy: dict
    seed: int
    space_signature: str
    observations: list[Observation] = field(default_factory=list)
    from_db: bool = False

    # ------------------------------------------------------------------
    @property
    def evaluations(self) -> int:
        return len(self.observations)

    @property
    def full_evaluations(self) -> int:
        return sum(1 for o in self.observations if o.is_full_fidelity)

    def full_observations(self) -> list[Observation]:
        return [o for o in self.observations if o.is_full_fidelity]

    # ------------------------------------------------------------------
    def front(self) -> list[Observation]:
        """Pareto front of the full-fidelity observations."""
        return pareto_front(self.full_observations())

    def incremental_fronts(self) -> Iterator[tuple[int, list[Observation]]]:
        """The front after each full-fidelity evaluation, in search order.

        Yields ``(full_evaluations_spent, front)`` pairs — the trajectory a
        caller would have seen had it polled the tuner while it ran.
        """
        prefix: list[Observation] = []
        for observation in self.observations:
            if not observation.is_full_fidelity:
                continue
            prefix.append(observation)
            yield len(prefix), pareto_front(prefix)

    def evaluations_to_front(self, reference: Sequence[Observation]) -> int | None:
        """Full-fidelity evaluations spent until the front first matched
        ``reference`` (same configurations), or ``None`` if it never did."""
        target = {config_key(o.config) for o in reference}
        for spent, front in self.incremental_fronts():
            if {config_key(o.config) for o in front} == target:
                return spent
        return None

    # ------------------------------------------------------------------
    def ladder(self):
        """Calibration-style ladder of the full-fidelity observations.

        Entries sorted fastest-first, one per configuration — directly
        consumable by :meth:`Session.select
        <repro.api.session.Session.select>` and the serve controller.
        """
        from ..api.session import CalibrationEntry

        entries = [
            CalibrationEntry(
                config=o.config,
                mean_error=o.error,
                max_error=o.error,
                speedup=o.speedup,
            )
            for o in self.full_observations()
        ]
        entries.sort(key=lambda e: e.speedup, reverse=True)
        return entries

    def best_for_budget(
        self, budget: float, safety_margin: float = 0.25
    ) -> ApproximationConfig | None:
        """Fastest tuned configuration expected to meet ``budget``."""
        if budget <= 0:
            raise TuningError(f"error budget must be positive, got {budget}")
        for entry in self.ladder():
            if entry.admissible(budget, safety_margin):
                return entry.config
        return None

    def budget_ladder(
        self, budgets: Iterable[float], safety_margin: float = 0.25
    ) -> dict[float, ApproximationConfig | None]:
        """Budget-indexed ladder: the selected configuration per error budget."""
        return {
            budget: self.best_for_budget(budget, safety_margin)
            for budget in budgets
        }

    # ------------------------------------------------------------------
    def to_record(self) -> dict:
        return {
            "kind": "tune",
            "app": self.app_name,
            "strategy": self.strategy,
            "seed": self.seed,
            "space_signature": self.space_signature,
            "observations": [
                {
                    "config": config_to_dict(o.config),
                    "fidelity": o.fidelity,
                    "error": o.error,
                    "speedup": o.speedup,
                    "runtime_s": o.runtime_s,
                }
                for o in self.observations
            ],
        }

    @classmethod
    def from_record(cls, record: dict) -> "TuningResult":
        return cls(
            app_name=record["app"],
            strategy=record["strategy"],
            seed=int(record["seed"]),
            space_signature=record["space_signature"],
            observations=[
                Observation(
                    config=config_from_dict(o["config"]),
                    fidelity=float(o["fidelity"]),
                    error=o["error"],
                    speedup=o["speedup"],
                    runtime_s=o["runtime_s"],
                )
                for o in record["observations"]
            ],
            from_db=True,
        )

    def describe(self) -> str:
        """Human-readable summary of the front."""
        lines = [
            f"Tuning result for {self.app_name!r} "
            f"({self.strategy.get('name', '?')}, seed {self.seed}): "
            f"{self.evaluations} evaluations "
            f"({self.full_evaluations} full-fidelity)"
            + (" [from tuning DB]" if self.from_db else "")
        ]
        lines.extend(f"  {o.describe()}" for o in self.front())
        return "\n".join(lines)


class Tuner:
    """Adaptive multi-fidelity autotuner over one engine.

    Parameters
    ----------
    engine:
        The :class:`~repro.api.engine.PerforationEngine` evaluations run
        on (``None`` builds a fresh serial engine).  Worker parallelism,
        memoization and the device/timing model all come from here.
    space:
        The :class:`SearchSpace` to explore (default:
        :func:`default_space`).
    strategy:
        Default strategy — an instance or registered name (``"grid"``,
        ``"random"``, ``"hill-climb"``, ``"successive-halving"``).
    seed:
        Default seed for the strategy's random decisions.
    db:
        Tuning database: ``None`` uses the environment default
        (``REPRO_TUNING_DB``), ``False``/``"off"`` disables persistence, a
        path opens a database there, a :class:`TuningDB` is used as-is.
    max_evals:
        Default evaluation budget (all fidelities), ``None`` = unlimited.
    """

    def __init__(
        self,
        engine=None,
        space: SearchSpace | None = None,
        strategy: Strategy | str | None = None,
        seed: int = 0,
        db: TuningDB | str | bool | None = None,
        max_evals: int | None = None,
    ) -> None:
        if engine is None:
            from ..api.engine import PerforationEngine

            engine = PerforationEngine()
        self.engine = engine
        self.space = space if space is not None else default_space()
        self.strategy = resolve_strategy(strategy)
        self.seed = seed
        self.db = resolve_db(db)
        self.max_evals = max_evals

    # ------------------------------------------------------------------
    def _device_signature(self) -> str:
        import hashlib

        return hashlib.sha256(repr(self.engine.device).encode()).hexdigest()

    def _default_inputs(self, app):
        return self.engine.session(app=app).default_inputs()

    # ------------------------------------------------------------------
    def tune(
        self,
        app,
        inputs=None,
        strategy: Strategy | str | None = None,
        seed: int | None = None,
        max_evals: int | None = None,
        space: SearchSpace | None = None,
    ) -> TuningResult:
        """Search the space for ``app`` on ``inputs`` (database-backed).

        A database hit replays the recorded result without a single
        evaluation; a miss runs the strategy and persists the outcome.
        """
        app = self.engine.resolve_app(app)
        if inputs is None:
            inputs = self._default_inputs(app)
        strategy = resolve_strategy(strategy) if strategy is not None else self.strategy
        seed = self.seed if seed is None else seed
        max_evals = self.max_evals if max_evals is None else max_evals
        space = space if space is not None else self.space

        key = tuning_key(
            kind="tune",
            app=app.name,
            device=self._device_signature(),
            backend=self.engine.backend.name,
            input=input_signature(inputs),
            space=space.signature(),
            strategy=strategy.describe(),
            seed=seed,
            max_evals=max_evals,
        )
        if self.db is not None:
            record = self.db.get(key)
            if record is not None:
                return TuningResult.from_record(record)

        task = TuningTask(self.engine, app, inputs, space, max_evals=max_evals)
        strategy.tune(task, random.Random(seed))
        result = TuningResult(
            app_name=app.name,
            strategy=strategy.describe(),
            seed=seed,
            space_signature=space.signature(),
            observations=task.observations,
        )
        if self.db is not None:
            self.db.put(key, result.to_record())
        return result

    # ------------------------------------------------------------------
    def calibration_entries(
        self,
        app,
        calibration_inputs: Sequence | None = None,
        configs: Iterable[ApproximationConfig] | None = None,
    ):
        """Database-backed equivalent of :meth:`Session.calibrate
        <repro.api.session.Session.calibrate>`.

        Returns the calibrated entries sorted fastest-first, computed with
        exactly the same engine primitives and aggregation as an in-process
        calibration — a cold database produces bit-identical floats, a warm
        one returns them without any evaluation at all.
        """
        from ..api.session import CalibrationEntry

        app = self.engine.resolve_app(app)
        if calibration_inputs is None:
            calibration_inputs = [self._default_inputs(app)]
        calibration_inputs = list(calibration_inputs)
        if not calibration_inputs:
            raise TuningError("calibration requires at least one input")
        if configs is None:
            from ..core.config import default_configurations

            configs = default_configurations(app.halo)
        configs = list(configs)

        key = tuning_key(
            kind="calibration",
            app=app.name,
            device=self._device_signature(),
            backend=self.engine.backend.name,
            inputs=[input_signature(i) for i in calibration_inputs],
            configs=[config_to_dict(c) for c in configs],
        )
        if self.db is not None:
            record = self.db.get(key)
            if record is not None:
                return [
                    CalibrationEntry(
                        config=config_from_dict(entry["config"]),
                        mean_error=entry["mean_error"],
                        max_error=entry["max_error"],
                        speedup=entry["speedup"],
                    )
                    for entry in record["entries"]
                ]

        # Mirror Session.calibrate exactly: per-config error statistics
        # aggregated over the calibration inputs, speedup from the timing
        # model at the first input's size, sorted fastest-first.
        per_config_errors: dict[str, list[float]] = {config_key(c): [] for c in configs}
        by_key = {config_key(c): c for c in configs}
        for inputs in calibration_inputs:
            sweep = self.engine.sweep(app, inputs, configs)
            for point in sweep.points:
                per_config_errors[config_key(point.config)].append(point.error)

        global_size = app.global_size(calibration_inputs[0])
        baseline_time = self.engine.baseline_timing(app, global_size).total_time_s

        entries = []
        for key_str, errors in per_config_errors.items():
            config = by_key[key_str]
            approx_time = self.engine.timing(app, config, global_size).total_time_s
            entries.append(
                CalibrationEntry(
                    config=config,
                    mean_error=float(np.mean(errors)),
                    max_error=float(np.max(errors)),
                    speedup=baseline_time / approx_time,
                )
            )
        entries.sort(key=lambda e: e.speedup, reverse=True)

        if self.db is not None:
            self.db.put(
                key,
                {
                    "kind": "calibration",
                    "app": app.name,
                    "entries": [
                        {
                            "config": config_to_dict(e.config),
                            "mean_error": e.mean_error,
                            "max_error": e.max_error,
                            "speedup": e.speedup,
                        }
                        for e in entries
                    ],
                },
            )
        return entries

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"<Tuner strategy={self.strategy.describe()} seed={self.seed} "
            f"db={'on' if self.db is not None else 'off'} on {self.engine!r}>"
        )
