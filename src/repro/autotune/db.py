"""Persistent cross-session tuning database.

The TuningDB stores finished tuning results on disk so a configuration
search never runs twice: a second session (or a serve restart) that asks
the same tuning question gets the recorded answer back bit-identically,
with **zero** kernel evaluations.

Records are keyed by a content hash over the full tuning question —
application, device, execution backend, input signature, space signature
(which embeds :data:`~repro.autotune.space.SPACE_VERSION`), strategy
identity and seed — so any change to any ingredient simply misses; stale
records can never alias.

The on-disk machinery is the shared generic store
(:class:`repro.api.store.DiskStore`): atomic writes, LRU bound,
corruption recovery, best-effort everywhere — a broken or unwritable
database degrades to "tune fresh", it never fails a session.  Entries are
one file per record: a header line followed by a canonical-JSON body
(JSON floats round-trip Python floats exactly, which is what makes warm
ladders bit-identical to freshly calibrated ones).

Environment variables (same conventions as ``REPRO_CODEGEN_CACHE*``):

* ``REPRO_TUNING_DB`` — overrides the directory (default
  ``~/.cache/repro-tuning``); the values ``0`` / ``off`` / ``none`` /
  ``disabled`` turn persistence off;
* ``REPRO_TUNING_DB_MAX`` — overrides the LRU bound (default 4096).
"""

from __future__ import annotations

import hashlib
import json
import os

import numpy as np

from ..api.store import DiskStore, StoreStats, env_store_config

#: Environment variable overriding the database directory (or disabling it).
ENV_DB_DIR = "REPRO_TUNING_DB"

#: Environment variable overriding the eviction bound.
ENV_DB_MAX = "REPRO_TUNING_DB_MAX"

DEFAULT_DB_DIR = "~/.cache/repro-tuning"
DEFAULT_DB_MAX = 4096

#: Every record starts with this line; anything else is treated as corrupt.
DB_HEADER = "# repro-tuning-db record"

#: Record format version; part of every key, so format changes miss cleanly.
DB_FORMAT_VERSION = 1


def input_signature(inputs) -> str:
    """Content hash of one tuning input (arrays by bytes, not identity)."""
    digest = hashlib.sha256()

    def feed(value) -> None:
        if isinstance(value, np.ndarray):
            array = np.ascontiguousarray(value)
            digest.update(b"array")
            digest.update(str(array.dtype).encode())
            digest.update(str(array.shape).encode())
            digest.update(array.tobytes())
        elif isinstance(value, (tuple, list)):
            digest.update(f"seq{len(value)}".encode())
            for part in value:
                feed(part)
        else:
            digest.update(repr(value).encode())

    feed(inputs)
    return digest.hexdigest()


def tuning_key(**parts) -> str:
    """Content hash of a tuning question (keyword parts, canonical JSON).

    The record format version *and the library version* are always part
    of the hash: evaluation results depend on the kernels, samplers and
    timing model, so a release that changes any of them must miss rather
    than replay floats measured by code that no longer exists.
    """
    from .. import __version__

    payload = {"format": DB_FORMAT_VERSION, "library": __version__, **parts}
    canonical = json.dumps(payload, sort_keys=True)
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


class TuningDB:
    """Dictionary-like persistent store of JSON tuning records."""

    def __init__(
        self,
        root: str | os.PathLike | None = None,
        max_entries: int | None = None,
        *,
        readonly: bool = False,
    ) -> None:
        self.store = DiskStore(
            root if root is not None else DEFAULT_DB_DIR,
            max_entries if max_entries is not None else DEFAULT_DB_MAX,
            header=DB_HEADER,
            suffix=".json",
            readonly=readonly,
        )

    @property
    def readonly(self) -> bool:
        """Whether this handle may write (fleet workers share one DB read-only)."""
        return self.store.readonly

    @property
    def root(self):
        return self.store.root

    def stats(self) -> StoreStats:
        """Hit/miss/eviction counters of the underlying store."""
        return self.store.stats()

    # ------------------------------------------------------------------
    def get(self, key: str) -> dict | None:
        """The record stored under ``key``, or ``None`` on miss/corruption."""
        text = self.store.get(key)
        if text is None:
            return None
        _, _, body = text.partition("\n")
        try:
            record = json.loads(body)
        except json.JSONDecodeError:
            record = None
        if not isinstance(record, dict):
            # Header intact but body torn/garbled: drop the entry and
            # reclassify the store's lookup as a miss — the caller has to
            # tune fresh, so reporting it as a hit would skew hit_rate.
            self.store.invalidate(key)
            stats = self.store.stats()
            stats.hits -= 1
            stats.misses += 1
            stats.errors += 1
            return None
        return record

    def put(self, key: str, record: dict) -> bool:
        """Store ``record`` (a JSON-serializable dict) under ``key``."""
        body = json.dumps(record, sort_keys=True)
        return self.store.put(key, f"{DB_HEADER} v{DB_FORMAT_VERSION}\n{body}\n")

    def invalidate(self, key: str) -> None:
        self.store.invalidate(key)

    def clear(self) -> int:
        return self.store.clear()

    def __len__(self) -> int:
        return len(self.store)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"TuningDB(root={str(self.root)!r}, entries={len(self)})"


# ---------------------------------------------------------------------------
# Process default
# ---------------------------------------------------------------------------
_default_dbs: dict[tuple[str, int], TuningDB] = {}


def default_db() -> TuningDB | None:
    """The process-wide database per the environment, or ``None`` if disabled.

    Re-reads the environment on every call; instances are shared per
    (directory, bound) so the stats accumulate — the same conventions as
    :func:`repro.api.artifacts.default_cache`.
    """
    config = env_store_config(ENV_DB_DIR, ENV_DB_MAX, DEFAULT_DB_DIR, DEFAULT_DB_MAX)
    if config is None:
        return None
    db = _default_dbs.get(config)
    if db is None:
        db = _default_dbs[config] = TuningDB(*config)
    return db


def resolve_db(db) -> TuningDB | None:
    """Normalise a database selection.

    ``None`` resolves to the environment default, ``False``/``"off"``
    disables persistence, a :class:`TuningDB` passes through, and a path
    opens a database at that location.
    """
    if db is None:
        return default_db()
    disabled = {"0", "off", "none", "disabled"}
    if db is False or (isinstance(db, str) and db.strip().lower() in disabled):
        return None
    if isinstance(db, TuningDB):
        return db
    return TuningDB(db)
