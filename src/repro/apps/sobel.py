"""Sobel edge detection (3x3 and 5x5 masks).

The Sobel operator approximates the image gradient with a horizontal and a
vertical convolution and reports the gradient magnitude.  The paper
evaluates two variants: ``Sobel3`` (3x3 masks) and ``Sobel5`` (5x5 masks).
The larger mask has much more data reuse across threads, which is why the
paper measures its largest speedup (3.05x) there.  Both use the *mean
error* metric because gradient outputs are frequently zero, which breaks
the mean relative error (Table 1).
"""

from __future__ import annotations

import numpy as np

from ..core.config import ApproximationConfig
from ..core.quality import ErrorMetric
from ..core.reconstruction import AccurateSampler, InputSampler
from .base import Application
from .stencils import convolve, count_nonzero_weights

#: 3x3 Sobel masks.
SOBEL3_GX = np.array(
    [
        [-1.0, 0.0, 1.0],
        [-2.0, 0.0, 2.0],
        [-1.0, 0.0, 1.0],
    ]
)
SOBEL3_GY = SOBEL3_GX.T.copy()

#: 5x5 Sobel (Sobel-Feldman extended) masks.
SOBEL5_GX = np.array(
    [
        [-1.0, -2.0, 0.0, 2.0, 1.0],
        [-4.0, -8.0, 0.0, 8.0, 4.0],
        [-6.0, -12.0, 0.0, 12.0, 6.0],
        [-4.0, -8.0, 0.0, 8.0, 4.0],
        [-1.0, -2.0, 0.0, 2.0, 1.0],
    ]
)
SOBEL5_GY = SOBEL5_GX.T.copy()

_KERNEL_SOURCE_3 = """
__kernel void sobel3(__global const float* input,
                     __global float* output,
                     int width, int height) {
    int x = get_global_id(0);
    int y = get_global_id(1);
    float gx = 0.0f;
    float gy = 0.0f;
    for (int dy = -1; dy <= 1; dy++) {
        for (int dx = -1; dx <= 1; dx++) {
            int xx = clamp(x + dx, 0, width - 1);
            int yy = clamp(y + dy, 0, height - 1);
            float value = input[yy * width + xx];
            gx += value * (float)(dx) * (2.0f - (float)(dy) * (float)(dy));
            gy += value * (float)(dy) * (2.0f - (float)(dx) * (float)(dx));
        }
    }
    output[y * width + x] = sqrt(gx * gx + gy * gy);
}
"""

_KERNEL_SOURCE_5 = """
__constant float sobel5_gx[25] = {
    -1.0f, -2.0f, 0.0f, 2.0f, 1.0f,
    -4.0f, -8.0f, 0.0f, 8.0f, 4.0f,
    -6.0f, -12.0f, 0.0f, 12.0f, 6.0f,
    -4.0f, -8.0f, 0.0f, 8.0f, 4.0f,
    -1.0f, -2.0f, 0.0f, 2.0f, 1.0f
};

__kernel void sobel5(__global const float* input,
                     __global float* output,
                     int width, int height) {
    int x = get_global_id(0);
    int y = get_global_id(1);
    float gx = 0.0f;
    float gy = 0.0f;
    for (int dy = -2; dy <= 2; dy++) {
        for (int dx = -2; dx <= 2; dx++) {
            int xx = clamp(x + dx, 0, width - 1);
            int yy = clamp(y + dy, 0, height - 1);
            float value = input[yy * width + xx];
            gx += value * sobel5_gx[(dy + 2) * 5 + (dx + 2)];
            gy += value * sobel5_gx[(dx + 2) * 5 + (dy + 2)];
        }
    }
    output[y * width + x] = sqrt(gx * gx + gy * gy);
}
"""


def _gradient_magnitude(sampler: InputSampler, gx_mask: np.ndarray, gy_mask: np.ndarray) -> np.ndarray:
    gx = convolve(sampler, gx_mask)
    gy = convolve(sampler, gy_mask)
    return np.sqrt(gx * gx + gy * gy)


class Sobel3App(Application):
    """Sobel edge detection with 3x3 masks."""

    name = "sobel3"
    domain = "Image processing"
    error_metric = ErrorMetric.MEAN_ERROR
    halo = 1
    flops_per_item = float(
        2 * count_nonzero_weights(SOBEL3_GX) + 2 * count_nonzero_weights(SOBEL3_GY) + 4
    )
    int_ops_per_item = 20.0
    sfu_ops_per_item = 1.0  # gradient-magnitude square root
    baseline_uses_local_memory = False

    def kernel_source(self) -> str:
        return _KERNEL_SOURCE_3

    def reference(self, inputs) -> np.ndarray:
        image = np.asarray(inputs, dtype=np.float64)
        return _gradient_magnitude(AccurateSampler(image), SOBEL3_GX, SOBEL3_GY)

    def approximate(self, inputs, config: ApproximationConfig) -> np.ndarray:
        image = np.asarray(inputs, dtype=np.float64)
        sampler = self.sampler_for(image, config)
        return _gradient_magnitude(sampler, SOBEL3_GX, SOBEL3_GY)


class Sobel5App(Application):
    """Sobel edge detection with 5x5 masks."""

    name = "sobel5"
    domain = "Image processing"
    error_metric = ErrorMetric.MEAN_ERROR
    halo = 2
    flops_per_item = float(
        2 * count_nonzero_weights(SOBEL5_GX) + 2 * count_nonzero_weights(SOBEL5_GY) + 4
    )
    int_ops_per_item = 40.0
    sfu_ops_per_item = 1.0
    baseline_uses_local_memory = False

    def kernel_source(self) -> str:
        return _KERNEL_SOURCE_5

    def reference(self, inputs) -> np.ndarray:
        image = np.asarray(inputs, dtype=np.float64)
        return _gradient_magnitude(AccurateSampler(image), SOBEL5_GX, SOBEL5_GY)

    def approximate(self, inputs, config: ApproximationConfig) -> np.ndarray:
        image = np.asarray(inputs, dtype=np.float64)
        sampler = self.sampler_for(image, config)
        return _gradient_magnitude(sampler, SOBEL5_GX, SOBEL5_GY)
