"""Gaussian 3x3 low-pass filter (image processing).

The first benchmark of Table 1: a separable-looking but straightforwardly
implemented 3x3 Gaussian blur.  It has data reuse across threads (every
input pixel is read by nine work-items), so it is the archetypal kernel for
local-memory staging — and therefore for local memory-aware perforation.
"""

from __future__ import annotations

import numpy as np

from ..core.config import ApproximationConfig
from ..core.quality import ErrorMetric
from ..core.reconstruction import AccurateSampler
from .base import Application
from .stencils import convolve

#: Normalised 3x3 Gaussian coefficients (sigma ~ 0.85).
GAUSSIAN_WEIGHTS = np.array(
    [
        [1.0, 2.0, 1.0],
        [2.0, 4.0, 2.0],
        [1.0, 2.0, 1.0],
    ]
) / 16.0

_KERNEL_SOURCE = """
__constant float gauss_coeff[9] = {
    0.0625f, 0.125f, 0.0625f,
    0.125f,  0.25f,  0.125f,
    0.0625f, 0.125f, 0.0625f
};

__kernel void gaussian(__global const float* input,
                       __global float* output,
                       int width, int height) {
    int x = get_global_id(0);
    int y = get_global_id(1);
    float sum = 0.0f;
    for (int dy = -1; dy <= 1; dy++) {
        for (int dx = -1; dx <= 1; dx++) {
            int xx = clamp(x + dx, 0, width - 1);
            int yy = clamp(y + dy, 0, height - 1);
            sum += input[yy * width + xx] * gauss_coeff[(dy + 1) * 3 + (dx + 1)];
        }
    }
    output[y * width + x] = sum;
}
"""


class GaussianApp(Application):
    """3x3 Gaussian blur."""

    name = "gaussian"
    domain = "Image processing"
    error_metric = ErrorMetric.MEAN_RELATIVE_ERROR
    halo = 1
    flops_per_item = 18.0  # 9 multiply-adds
    int_ops_per_item = 20.0  # index arithmetic and clamps
    baseline_uses_local_memory = False  # the Paraprox-style baseline reads global memory

    def kernel_source(self) -> str:
        return _KERNEL_SOURCE

    def reference(self, inputs) -> np.ndarray:
        image = np.asarray(inputs, dtype=np.float64)
        return convolve(AccurateSampler(image), GAUSSIAN_WEIGHTS)

    def approximate(self, inputs, config: ApproximationConfig) -> np.ndarray:
        image = np.asarray(inputs, dtype=np.float64)
        sampler = self.sampler_for(image, config)
        return convolve(sampler, GAUSSIAN_WEIGHTS)
