"""Median 3x3 filter (medical imaging).

A nonlinear rank filter: each output sample is the median of its 3x3
neighbourhood, which removes salt-and-pepper noise.  The paper's accurate
baseline is already highly optimised — it prefetches through local memory
and computes the median of medians (Blum et al.) in private memory — so
the speedup the perforation adds (1.3x-1.6x) comes on top of an optimised
kernel, which is why it is the smallest of the study.
"""

from __future__ import annotations

import numpy as np

from ..core.config import ApproximationConfig
from ..core.quality import ErrorMetric
from ..core.reconstruction import AccurateSampler
from .base import Application
from .stencils import rank_filter

_KERNEL_SOURCE = """
__kernel void median(__global const float* input,
                     __global float* output,
                     int width, int height) {
    int x = get_global_id(0);
    int y = get_global_id(1);
    float window[9];
    int count = 0;
    for (int dy = -1; dy <= 1; dy++) {
        for (int dx = -1; dx <= 1; dx++) {
            int xx = clamp(x + dx, 0, width - 1);
            int yy = clamp(y + dy, 0, height - 1);
            window[count] = input[yy * width + xx];
            count = count + 1;
        }
    }
    for (int i = 1; i < 9; i++) {
        float key = window[i];
        int j = i - 1;
        while (j >= 0 && window[j] > key) {
            window[j + 1] = window[j];
            j = j - 1;
        }
        window[j + 1] = key;
    }
    output[y * width + x] = window[4];
}
"""


class MedianApp(Application):
    """3x3 median filter (median-of-medians baseline in private memory)."""

    name = "median"
    domain = "Medical imaging"
    error_metric = ErrorMetric.MEAN_RELATIVE_ERROR
    halo = 1
    # The median-of-medians network needs roughly 30 compare/select
    # operations per pixel plus the private-memory traffic of the window.
    flops_per_item = 30.0
    int_ops_per_item = 20.0
    private_accesses_per_item = 18.0
    baseline_uses_local_memory = True  # the paper's baseline is already optimised

    def kernel_source(self) -> str:
        return _KERNEL_SOURCE

    def reference(self, inputs) -> np.ndarray:
        image = np.asarray(inputs, dtype=np.float64)
        return rank_filter(AccurateSampler(image), radius=1, rank="median")

    def approximate(self, inputs, config: ApproximationConfig) -> np.ndarray:
        image = np.asarray(inputs, dtype=np.float64)
        sampler = self.sampler_for(image, config)
        return rank_filter(sampler, radius=1, rank="median")
