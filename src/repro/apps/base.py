"""Benchmark-application abstraction.

Every benchmark of the paper's evaluation (Table 1) is an
:class:`Application`: it bundles

* the OpenCL C kernel source (in the :mod:`repro.kernellang` subset) used
  by the compiler path and by the functional-correctness tests;
* a NumPy reference implementation of the accurate kernel;
* a NumPy implementation of the *approximate* kernel built on the input
  samplers from :mod:`repro.core.reconstruction` (semantically equivalent
  to running the perforated kernel, but fast enough for the parameter
  sweeps of the evaluation);
* a traffic/operation profile for the analytical timing model, for the
  accurate baseline as well as every perforation scheme.
"""

from __future__ import annotations

import abc
import math
from dataclasses import dataclass
from functools import lru_cache

import numpy as np

from ..clsim.ndrange import NDRange
from ..clsim.timing import (
    AccessPattern,
    GlobalTraffic,
    KernelProfile,
    per_item_traffic,
    tile_traffic,
)
from ..core.config import ApproximationConfig
from ..core.errors import ConfigurationError
from ..core.perforator import KernelPerforator
from ..core.quality import ErrorMetric
from ..core.reconstruction import make_sampler
from ..core.schemes import (
    KIND_COLUMNS,
    KIND_RANDOM,
    KIND_ROWS,
    KIND_STENCIL,
    PerforationScheme,
)


@dataclass(frozen=True)
class InputBufferSpec:
    """Description of one global input buffer of a kernel."""

    name: str
    halo: int
    reads_per_item: float
    perforate: bool = True


class Application(abc.ABC):
    """Base class of the six benchmark applications."""

    #: Short lowercase identifier (``gaussian``, ``sobel5``, ...).
    name: str = "application"
    #: Application domain, as listed in Table 1 of the paper.
    domain: str = ""
    #: Error metric used in the evaluation (Table 1).
    error_metric: ErrorMetric = ErrorMetric.MEAN_RELATIVE_ERROR
    #: Stencil halo of the kernel's input access (0 for 1x1 filters).
    halo: int = 0
    #: Arithmetic work per output element.
    flops_per_item: float = 1.0
    int_ops_per_item: float = 4.0
    sfu_ops_per_item: float = 0.0
    #: Private-memory traffic per output element (Median's median-of-medians).
    private_accesses_per_item: float = 0.0
    #: Whether the accurate baseline already stages its input in local memory
    #: (the paper: true for Gaussian and Median, false for Inversion).
    baseline_uses_local_memory: bool = False
    #: Bytes per input element.
    element_bytes: int = 4
    #: Work-group shape of the accurate baseline (speedups are relative to it).
    baseline_work_group: tuple[int, int] = (16, 16)

    # ------------------------------------------------------------------
    # Abstract interface
    # ------------------------------------------------------------------
    @abc.abstractmethod
    def kernel_source(self) -> str:
        """OpenCL C source of the accurate kernel."""

    @abc.abstractmethod
    def reference(self, inputs) -> np.ndarray:
        """Accurate output for ``inputs`` (NumPy reference implementation)."""

    @abc.abstractmethod
    def approximate(self, inputs, config: ApproximationConfig) -> np.ndarray:
        """Output of the perforated + reconstructed kernel for ``inputs``."""

    # ------------------------------------------------------------------
    # Defaults shared by the image-processing applications
    # ------------------------------------------------------------------
    def input_specs(self) -> list[InputBufferSpec]:
        """Input buffers of the kernel (default: a single ``input`` image)."""
        reads = float((2 * self.halo + 1) ** 2)
        return [InputBufferSpec(name="input", halo=self.halo, reads_per_item=reads)]

    def global_size(self, inputs) -> tuple[int, int]:
        """NDRange global size (width, height) for ``inputs``."""
        image = np.asarray(inputs)
        height, width = image.shape[:2]
        return (width, height)

    def sampler_for(self, image: np.ndarray, config: ApproximationConfig):
        """Approximate input sampler for ``image`` under ``config``."""
        tile_x, tile_y = config.work_group
        return make_sampler(
            image,
            config.scheme,
            config.reconstruction,
            tile_x=tile_x,
            tile_y=tile_y,
            halo=self.halo,
        )

    # ------------------------------------------------------------------
    # Compiler path
    # ------------------------------------------------------------------
    def perforator(self) -> KernelPerforator:
        """Kernel perforator for this application's kernel source (cached)."""
        return _cached_perforator(type(self), self.kernel_source())

    def output_buffer(self, inputs):
        """Zero-initialised output buffer for a compiled-kernel launch."""
        from ..clsim.memory import Buffer

        image = np.asarray(inputs, dtype=np.float64)
        return Buffer(np.zeros_like(image), "output")

    def kernel_args(self, inputs, output) -> dict[str, object]:
        """Argument binding for launching this application's kernel on the
        clsim executor (the compiler path).  ``output`` is the buffer
        returned by :meth:`output_buffer`.  Applications with extra buffers
        or scalar parameters (e.g. Hotspot) override this."""
        from ..clsim.memory import Buffer

        image = np.asarray(inputs, dtype=np.float64)
        height, width = image.shape[:2]
        return {
            "input": Buffer(image, "input"),
            "output": output,
            "width": width,
            "height": height,
        }

    # ------------------------------------------------------------------
    # Timing profiles
    # ------------------------------------------------------------------
    def profile(
        self, config: ApproximationConfig, global_size: tuple[int, int]
    ) -> tuple[KernelProfile, NDRange]:
        """Traffic/operation profile of this kernel under ``config``.

        The profile is what the analytical timing model consumes; it covers
        the accurate baseline (with or without local-memory staging, as the
        paper's baselines do) and every perforation scheme.
        """
        width, height = global_size
        tile_x, tile_y = config.work_group
        if width % tile_x or height % tile_y:
            raise ConfigurationError(
                f"work group {config.work_group} does not divide the global size {global_size}"
            )
        ndrange = NDRange((width, height), (tile_x, tile_y))
        items_per_group = tile_x * tile_y

        traffic: list[GlobalTraffic] = []
        local_reads = 0.0
        local_writes = 0.0
        barriers = 0.0
        local_bytes = 0.0
        extra_flops = 0.0

        for spec in self.input_specs():
            tile_w = tile_x + 2 * spec.halo
            tile_h = tile_y + 2 * spec.halo
            tile_elements = tile_w * tile_h
            scheme = config.scheme if (spec.perforate and not config.is_accurate) else None
            if scheme is not None and scheme.requires_halo() and spec.halo == 0:
                # The stencil scheme perforates the halo; 1x1-read buffers
                # (e.g. Hotspot's power map) are staged accurately instead.
                scheme = None

            if config.is_accurate and not self.baseline_uses_local_memory:
                # Naive baseline: every read goes through the global path.
                traffic.append(
                    per_item_traffic(
                        spec.name,
                        tile_x,
                        tile_y,
                        elements_per_item=spec.reads_per_item,
                        halo=spec.halo,
                        element_bytes=self.element_bytes,
                    )
                )
                continue

            if scheme is None:
                # Local-memory staging of the full tile (accurate optimised
                # baseline, or a non-perforated buffer of an approximate kernel).
                traffic.append(
                    tile_traffic(
                        spec.name,
                        tile_x,
                        tile_y,
                        halo=spec.halo,
                        element_bytes=self.element_bytes,
                    )
                )
                local_writes += tile_elements / items_per_group
                local_reads += spec.reads_per_item
                local_bytes += tile_elements * self.element_bytes
                barriers = max(barriers, 1.0)
                continue

            traffic.append(
                self._perforated_traffic(spec, scheme, tile_x, tile_y, tile_w, tile_h)
            )
            loaded_fraction = scheme.loaded_fraction(tile_h, tile_w, spec.halo)
            reconstructed = tile_elements * (1.0 - loaded_fraction)
            local_writes += tile_elements / items_per_group
            local_reads += spec.reads_per_item + reconstructed / items_per_group
            local_bytes += tile_elements * self.element_bytes
            barriers = max(barriers, 3.0)
            if config.reconstruction == "linear-interpolation":
                extra_flops += 3.0 * reconstructed / items_per_group

        traffic.append(
            tile_traffic(
                "output",
                tile_x,
                tile_y,
                halo=0,
                element_bytes=self.element_bytes,
                is_store=True,
            )
        )

        profile = KernelProfile(
            name=f"{self.name}:{config.label}",
            traffic=tuple(traffic),
            flops_per_item=self.flops_per_item + extra_flops,
            int_ops_per_item=self.int_ops_per_item,
            sfu_ops_per_item=self.sfu_ops_per_item,
            private_accesses_per_item=self.private_accesses_per_item,
            local_reads_per_item=local_reads,
            local_writes_per_item=local_writes,
            barriers_per_group=barriers,
            local_mem_bytes_per_group=local_bytes,
        )
        return profile, ndrange

    def _perforated_traffic(
        self,
        spec: InputBufferSpec,
        scheme: PerforationScheme,
        tile_x: int,
        tile_y: int,
        tile_w: int,
        tile_h: int,
    ) -> GlobalTraffic:
        """DRAM traffic of the perforated prefetch of one buffer."""
        kind = scheme.kind
        if kind == KIND_ROWS:
            loaded_rows = math.ceil(tile_h / scheme.step)  # type: ignore[attr-defined]
            return tile_traffic(
                spec.name,
                tile_x,
                tile_y,
                halo=spec.halo,
                element_bytes=self.element_bytes,
                rows_loaded_fraction=loaded_rows / tile_h,
            )
        if kind == KIND_STENCIL:
            if spec.halo == 0:
                raise ConfigurationError(
                    f"{self.name}: the stencil scheme cannot be applied to the "
                    f"1x1 input buffer {spec.name!r}"
                )
            return tile_traffic(
                spec.name,
                tile_x,
                tile_y,
                halo=spec.halo,
                element_bytes=self.element_bytes,
                include_halo=False,
            )
        if kind == KIND_COLUMNS:
            loaded_cols = math.ceil(tile_w / scheme.step)  # type: ignore[attr-defined]
            # Column loads are strided: every element is its own transaction.
            return GlobalTraffic(
                buffer=spec.name,
                segments_per_group=float(tile_h * loaded_cols),
                segment_elements=1.0,
                element_bytes=self.element_bytes,
                pattern=AccessPattern.STRIDED,
            )
        if kind == KIND_RANDOM:
            loaded = scheme.loaded_fraction(tile_h, tile_w, spec.halo) * tile_w * tile_h
            return GlobalTraffic(
                buffer=spec.name,
                segments_per_group=loaded,
                segment_elements=1.0,
                element_bytes=self.element_bytes,
                pattern=AccessPattern.SCATTER,
            )
        raise ConfigurationError(f"unsupported scheme kind {kind!r}")

    # ------------------------------------------------------------------
    def describe(self) -> str:
        """Table 1 style description line."""
        return (
            f"{self.name:<10s} {self.domain:<22s} {self.error_metric.value:<24s} "
            f"filter {2 * self.halo + 1}x{2 * self.halo + 1}"
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<Application {self.name}>"


@lru_cache(maxsize=32)
def _cached_perforator(app_type: type, source: str) -> KernelPerforator:
    """Cache perforators per application class (parsing is not free)."""
    return KernelPerforator(source)
