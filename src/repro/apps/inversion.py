"""Image inversion (digital negative).

The paper's artificial 1x1-filter benchmark: every output pixel depends on
exactly one input pixel, so there is no data reuse across threads and the
accurate kernel gains nothing from local memory.  It exists to show that
input perforation still helps such kernels (Figure 10b) — the row scheme
halves the input traffic — while the stencil scheme is inapplicable.
"""

from __future__ import annotations

import numpy as np

from ..core.config import ApproximationConfig
from ..core.quality import ErrorMetric
from .base import Application

#: Value the inversion is computed against (8-bit grayscale maximum).
INVERSION_MAX = 255.0

_KERNEL_SOURCE = """
__kernel void inversion(__global const float* input,
                        __global float* output,
                        int width, int height) {
    int x = get_global_id(0);
    int y = get_global_id(1);
    output[y * width + x] = 255.0f - input[y * width + x];
}
"""


class InversionApp(Application):
    """1x1 digital negative."""

    name = "inversion"
    domain = "Image processing"
    error_metric = ErrorMetric.MEAN_RELATIVE_ERROR
    halo = 0
    flops_per_item = 1.0
    int_ops_per_item = 6.0
    baseline_uses_local_memory = False  # a prefetch step would only add overhead

    def kernel_source(self) -> str:
        return _KERNEL_SOURCE

    def reference(self, inputs) -> np.ndarray:
        image = np.asarray(inputs, dtype=np.float64)
        return INVERSION_MAX - image

    def approximate(self, inputs, config: ApproximationConfig) -> np.ndarray:
        image = np.asarray(inputs, dtype=np.float64)
        sampler = self.sampler_for(image, config)
        return INVERSION_MAX - sampler.read_offset(0, 0)
