"""Hotspot: 2D transient thermal simulation (Rodinia).

Hotspot iteratively solves the heat equation on a chip floorplan: each
step updates the temperature grid from the previous temperature, the power
dissipated in each cell, and the heat exchanged with the neighbours and
the heat sink.  The kernel reads a 5-point stencil of the temperature grid
plus one element of the power grid per cell.

The paper perforates the *inputs* of the kernel (temperature and power)
with row scheme 1 and reports a 1.98x speedup with a very small, very
low-variance error — the temperature field is smooth, so skipping rows and
reconstructing them is almost lossless.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.config import ApproximationConfig
from ..core.quality import ErrorMetric
from ..core.reconstruction import AccurateSampler, InputSampler, make_sampler
from ..data.hotspot import AMBIENT_TEMPERATURE, HotspotInput
from .base import Application, InputBufferSpec

#: Physical constants (following Rodinia's hotspot defaults, simplified to a
#: per-cell formulation that is stable for a single explicit step).
CHIP_HEIGHT_M = 0.016
CHIP_WIDTH_M = 0.016
T_CHIP_M = 0.0005
K_SI = 100.0
CAP_FACTOR = 0.5
MAX_PD = 3.0e6
PRECISION = 0.001


@dataclass(frozen=True)
class HotspotCoefficients:
    """Per-step update coefficients for a given grid size."""

    step_div_cap: float
    rx_1: float
    ry_1: float
    rz_1: float
    ambient: float = AMBIENT_TEMPERATURE

    @classmethod
    def for_grid(cls, rows: int, cols: int) -> "HotspotCoefficients":
        grid_height = CHIP_HEIGHT_M / rows
        grid_width = CHIP_WIDTH_M / cols
        cap = CAP_FACTOR * 1.75e6 * T_CHIP_M * grid_width * grid_height
        rx = grid_width / (2.0 * K_SI * T_CHIP_M * grid_height)
        ry = grid_height / (2.0 * K_SI * T_CHIP_M * grid_width)
        rz = T_CHIP_M / (K_SI * grid_height * grid_width)
        max_slope = MAX_PD / (CAP_FACTOR * 1.75e6 * T_CHIP_M)
        step = PRECISION / max_slope
        return cls(
            step_div_cap=step / cap,
            rx_1=1.0 / rx,
            ry_1=1.0 / ry,
            rz_1=1.0 / rz,
        )


_KERNEL_SOURCE = """
__kernel void hotspot(__global const float* temp,
                      __global const float* power,
                      __global float* output,
                      int width, int height,
                      float step_div_cap, float rx_1, float ry_1, float rz_1,
                      float ambient) {
    int x = get_global_id(0);
    int y = get_global_id(1);
    int n = clamp(y - 1, 0, height - 1);
    int s = clamp(y + 1, 0, height - 1);
    int w = clamp(x - 1, 0, width - 1);
    int e = clamp(x + 1, 0, width - 1);
    float center = temp[y * width + x];
    float delta = step_div_cap * (
        power[y * width + x] +
        (temp[s * width + x] + temp[n * width + x] - 2.0f * center) * ry_1 +
        (temp[y * width + e] + temp[y * width + w] - 2.0f * center) * rx_1 +
        (ambient - center) * rz_1);
    output[y * width + x] = center + delta;
}
"""


def _simulation_step(
    temp_sampler: InputSampler,
    power_sampler: InputSampler,
    coefficients: HotspotCoefficients,
) -> np.ndarray:
    """One explicit update step using (possibly approximate) input views."""
    center = temp_sampler.read_offset(0, 0)
    north = temp_sampler.read_offset(0, -1)
    south = temp_sampler.read_offset(0, 1)
    west = temp_sampler.read_offset(-1, 0)
    east = temp_sampler.read_offset(1, 0)
    power = power_sampler.read_offset(0, 0)
    delta = coefficients.step_div_cap * (
        power
        + (south + north - 2.0 * center) * coefficients.ry_1
        + (east + west - 2.0 * center) * coefficients.rx_1
        + (coefficients.ambient - center) * coefficients.rz_1
    )
    return center + delta


class HotspotApp(Application):
    """One step of the Rodinia Hotspot thermal simulation."""

    name = "hotspot"
    domain = "Physics simulation"
    error_metric = ErrorMetric.MEAN_RELATIVE_ERROR
    halo = 1
    flops_per_item = 16.0
    int_ops_per_item = 24.0
    baseline_uses_local_memory = False  # Paraprox-style baseline reads global memory

    def kernel_source(self) -> str:
        return _KERNEL_SOURCE

    # ------------------------------------------------------------------
    def input_specs(self) -> list[InputBufferSpec]:
        return [
            InputBufferSpec(name="temp", halo=1, reads_per_item=5.0),
            InputBufferSpec(name="power", halo=0, reads_per_item=1.0),
        ]

    def global_size(self, inputs: HotspotInput) -> tuple[int, int]:
        return (inputs.size, inputs.size)

    def output_buffer(self, inputs: HotspotInput):
        from ..clsim.memory import Buffer

        return Buffer(np.zeros_like(inputs.temperature), "output")

    def kernel_args(self, inputs: HotspotInput, output) -> dict[str, object]:
        from ..clsim.memory import Buffer

        coefficients = HotspotCoefficients.for_grid(inputs.size, inputs.size)
        return {
            "temp": Buffer(inputs.temperature, "temp"),
            "power": Buffer(inputs.power, "power"),
            "output": output,
            "width": inputs.size,
            "height": inputs.size,
            "step_div_cap": coefficients.step_div_cap,
            "rx_1": coefficients.rx_1,
            "ry_1": coefficients.ry_1,
            "rz_1": coefficients.rz_1,
            "ambient": coefficients.ambient,
        }

    # ------------------------------------------------------------------
    def reference(self, inputs: HotspotInput) -> np.ndarray:
        coefficients = HotspotCoefficients.for_grid(inputs.size, inputs.size)
        return _simulation_step(
            AccurateSampler(inputs.temperature),
            AccurateSampler(inputs.power),
            coefficients,
        )

    def approximate(self, inputs: HotspotInput, config: ApproximationConfig) -> np.ndarray:
        coefficients = HotspotCoefficients.for_grid(inputs.size, inputs.size)
        tile_x, tile_y = config.work_group
        temp_sampler = make_sampler(
            inputs.temperature,
            config.scheme,
            config.reconstruction,
            tile_x=tile_x,
            tile_y=tile_y,
            halo=1,
        )
        if config.scheme.requires_halo():
            # The stencil scheme perforates the halo, which the 1x1 power
            # read does not have; the power buffer stays accurate then.
            power_sampler: InputSampler = AccurateSampler(inputs.power)
        else:
            power_sampler = make_sampler(
                inputs.power,
                config.scheme,
                config.reconstruction,
                tile_x=tile_x,
                tile_y=tile_y,
                halo=0,
            )
        return _simulation_step(temp_sampler, power_sampler, coefficients)

    # ------------------------------------------------------------------
    def simulate(
        self,
        inputs: HotspotInput,
        steps: int,
        config: ApproximationConfig | None = None,
    ) -> np.ndarray:
        """Run several simulation steps (used by the thermal example).

        When a configuration is given, every step reads its inputs through
        the perforated view — the accumulated drift over many steps is what
        the extended analysis (EXPERIMENTS.md) reports.
        """
        if steps <= 0:
            raise ValueError("steps must be positive")
        state = inputs
        result = inputs.temperature
        for _ in range(steps):
            if config is None or config.is_accurate:
                result = self.reference(state)
            else:
                result = self.approximate(state, config)
            state = HotspotInput(size=inputs.size, temperature=result, power=inputs.power)
        return result
