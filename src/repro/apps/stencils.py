"""Shared helpers for stencil-style applications.

The image-processing benchmarks all follow the same structure: gather a
small neighbourhood of every pixel (through an :class:`InputSampler`, which
may be exact or perforated + reconstructed) and combine it — by a weighted
sum (Gaussian, Sobel), a rank filter (Median) or a finite-difference update
(Hotspot).  The helpers here implement the gather/combine patterns once.
"""

from __future__ import annotations

from typing import Iterable

import numpy as np

from ..core.reconstruction import InputSampler


def offsets_for_radius(radius: int) -> list[tuple[int, int]]:
    """All (dx, dy) offsets of a square (2*radius+1)^2 neighbourhood."""
    return [
        (dx, dy)
        for dy in range(-radius, radius + 1)
        for dx in range(-radius, radius + 1)
    ]


def convolve(sampler: InputSampler, weights: np.ndarray) -> np.ndarray:
    """2D convolution (correlation) of the sampled input with ``weights``.

    ``weights`` is a (2r+1) x (2r+1) array; zero weights are skipped, which
    matters for the Sobel masks whose centre column/row is zero.
    """
    weights = np.asarray(weights, dtype=np.float64)
    if weights.ndim != 2 or weights.shape[0] != weights.shape[1] or weights.shape[0] % 2 == 0:
        raise ValueError(f"weights must be a square odd-sized array, got {weights.shape}")
    radius = weights.shape[0] // 2
    result = np.zeros((sampler.height, sampler.width), dtype=np.float64)
    for dy in range(-radius, radius + 1):
        for dx in range(-radius, radius + 1):
            weight = weights[dy + radius, dx + radius]
            if weight == 0.0:
                continue
            result += weight * sampler.read_offset(dx, dy)
    return result


def gather_neighborhood(sampler: InputSampler, radius: int) -> np.ndarray:
    """Stack the full neighbourhood: shape ((2r+1)^2, height, width)."""
    planes = [sampler.read_offset(dx, dy) for dx, dy in offsets_for_radius(radius)]
    return np.stack(planes, axis=0)


def rank_filter(sampler: InputSampler, radius: int, rank: str = "median") -> np.ndarray:
    """Rank filter over the neighbourhood (``median``, ``min`` or ``max``)."""
    neighborhood = gather_neighborhood(sampler, radius)
    if rank == "median":
        return np.median(neighborhood, axis=0)
    if rank == "min":
        return neighborhood.min(axis=0)
    if rank == "max":
        return neighborhood.max(axis=0)
    raise ValueError(f"unknown rank {rank!r}")


def count_nonzero_weights(weights: Iterable[Iterable[float]]) -> int:
    """Number of non-zero coefficients (used for op-count estimates)."""
    return int(np.count_nonzero(np.asarray(list(weights), dtype=np.float64)))
