"""``repro.apps`` — the six benchmark applications of the evaluation.

Table 1 of the paper:

==========  ====================  ====================
Application Domain                Error metric
==========  ====================  ====================
Gaussian    Image processing      Mean relative error
Median      Medical imaging       Mean relative error
Hotspot     Physics simulation    Mean relative error
Inversion   Image processing      Mean relative error
Sobel3      Image processing      Mean error
Sobel5      Image processing      Mean error
==========  ====================  ====================
"""

from __future__ import annotations

from .base import Application, InputBufferSpec
from .gaussian import GAUSSIAN_WEIGHTS, GaussianApp
from .hotspot import HotspotApp, HotspotCoefficients
from .inversion import INVERSION_MAX, InversionApp
from .median import MedianApp
from .sobel import SOBEL3_GX, SOBEL3_GY, SOBEL5_GX, SOBEL5_GY, Sobel3App, Sobel5App

#: Factory functions for every benchmark, keyed by name.
_APP_FACTORIES = {
    "gaussian": GaussianApp,
    "inversion": InversionApp,
    "median": MedianApp,
    "hotspot": HotspotApp,
    "sobel3": Sobel3App,
    "sobel5": Sobel5App,
}

#: Applications whose input is a single grayscale image.
IMAGE_APPS = ("gaussian", "inversion", "median", "sobel3", "sobel5")

#: The order Table 1 lists the applications in.
TABLE1_ORDER = ("gaussian", "median", "hotspot", "inversion", "sobel3", "sobel5")


def available_applications() -> list[str]:
    """Names of all benchmark applications."""
    return sorted(_APP_FACTORIES)


def get_application(name: str) -> Application:
    """Instantiate a benchmark application by name."""
    try:
        factory = _APP_FACTORIES[name]
    except KeyError as exc:
        raise KeyError(
            f"unknown application {name!r}; available: {available_applications()}"
        ) from exc
    return factory()


def all_applications() -> list[Application]:
    """Instantiate every benchmark application (Table 1 order)."""
    return [get_application(name) for name in TABLE1_ORDER]


__all__ = [
    "Application",
    "GAUSSIAN_WEIGHTS",
    "GaussianApp",
    "HotspotApp",
    "HotspotCoefficients",
    "IMAGE_APPS",
    "INVERSION_MAX",
    "InputBufferSpec",
    "InversionApp",
    "MedianApp",
    "SOBEL3_GX",
    "SOBEL3_GY",
    "SOBEL5_GX",
    "SOBEL5_GY",
    "Sobel3App",
    "Sobel5App",
    "TABLE1_ORDER",
    "all_applications",
    "available_applications",
    "get_application",
]
