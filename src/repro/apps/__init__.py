"""``repro.apps`` — the six benchmark applications of the evaluation.

Table 1 of the paper:

==========  ====================  ====================
Application Domain                Error metric
==========  ====================  ====================
Gaussian    Image processing      Mean relative error
Median      Medical imaging       Mean relative error
Hotspot     Physics simulation    Mean relative error
Inversion   Image processing      Mean relative error
Sobel3      Image processing      Mean error
Sobel5      Image processing      Mean error
==========  ====================  ====================
"""

from __future__ import annotations

from typing import Callable

from ..api.registry import Registry
from .base import Application, InputBufferSpec
from .gaussian import GAUSSIAN_WEIGHTS, GaussianApp
from .hotspot import HotspotApp, HotspotCoefficients
from .inversion import INVERSION_MAX, InversionApp
from .median import MedianApp
from .sobel import SOBEL3_GX, SOBEL3_GY, SOBEL5_GX, SOBEL5_GY, Sobel3App, Sobel5App

#: Registry of application factories, keyed by name.  Third-party apps can
#: add themselves via :func:`register_application` and are then resolvable
#: by every engine: ``PerforationEngine().session(app="my-filter")``.
APPLICATIONS: Registry[Callable[[], Application]] = Registry("application", error=KeyError)

for _factory in (GaussianApp, InversionApp, MedianApp, HotspotApp, Sobel3App, Sobel5App):
    APPLICATIONS.register(_factory.name, _factory)

#: Applications whose input is a single grayscale image.
IMAGE_APPS = ("gaussian", "inversion", "median", "sobel3", "sobel5")

#: The order Table 1 lists the applications in.
TABLE1_ORDER = ("gaussian", "median", "hotspot", "inversion", "sobel3", "sobel5")


def register_application(
    name: str, factory: Callable[[], Application] | None = None, *, overwrite: bool = False
):
    """Register an application factory under ``name``.

    Usable directly (``register_application("x", XApp)``) or as a class
    decorator (``@register_application("x")``).
    """
    return APPLICATIONS.register(name, factory, overwrite=overwrite)


def available_applications() -> list[str]:
    """Names of all registered applications."""
    return APPLICATIONS.names()


def get_application(name: str) -> Application:
    """Instantiate a registered application by name."""
    return APPLICATIONS.get(name)()


def all_applications() -> list[Application]:
    """Instantiate every benchmark application (Table 1 order)."""
    return [get_application(name) for name in TABLE1_ORDER]


__all__ = [
    "APPLICATIONS",
    "Application",
    "GAUSSIAN_WEIGHTS",
    "GaussianApp",
    "HotspotApp",
    "HotspotCoefficients",
    "IMAGE_APPS",
    "INVERSION_MAX",
    "InputBufferSpec",
    "InversionApp",
    "MedianApp",
    "SOBEL3_GX",
    "SOBEL3_GY",
    "SOBEL5_GX",
    "SOBEL5_GY",
    "Sobel3App",
    "Sobel5App",
    "TABLE1_ORDER",
    "all_applications",
    "available_applications",
    "get_application",
    "register_application",
]
