"""Typed metrics registry: counters, gauges, histograms.

Mirrors the merge/``to_dict``/``from_dict`` semantics of
``repro.serve.metrics.ServeMetrics`` so registries from fleet workers can be
shipped over the wire and folded into the front-end's view:

* counters and histogram counts/sums **add** on merge,
* gauges take the **maximum** (concurrent processes have no shared ordering,
  and every gauge we export — buffer sizes, worst fractions — is a
  high-water mark),
* histograms also fold ``min``/``max``.

:func:`cache_snapshot` is the one canonical shape for cache statistics; the
three historic stat structs (``StoreStats``, ``ServeCacheStats``,
``CacheStats``) all expose ``snapshot()`` by delegating here, and the
``hit_rate`` ratio is guarded against empty caches.
"""

from __future__ import annotations

import os
import threading
import weakref
from typing import Any, Callable, Iterator

__all__ = [
    "ENV_METRICS",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "cache_snapshot",
    "default_registry",
    "register_collector",
    "exposition",
]

ENV_METRICS = "REPRO_METRICS"

_DISABLED_VALUES = {"", "0", "off", "none", "disable", "disabled"}


class Counter:
    """Monotonically increasing count."""

    kind = "counter"
    __slots__ = ("name", "help", "value")

    def __init__(self, name: str, help: str = "") -> None:
        self.name = name
        self.help = help
        self.value = 0

    def inc(self, amount: int | float = 1) -> None:
        if amount < 0:
            raise ValueError(f"counter {self.name} cannot decrease (inc {amount})")
        self.value += amount

    def merge(self, other: "Counter") -> None:
        self.value += other.value

    def to_dict(self) -> dict[str, Any]:
        return {"type": self.kind, "help": self.help, "value": self.value}

    def load(self, data: dict[str, Any]) -> None:
        self.value = data.get("value", 0)


class Gauge:
    """Point-in-time value; merge keeps the maximum across processes."""

    kind = "gauge"
    __slots__ = ("name", "help", "value")

    def __init__(self, name: str, help: str = "") -> None:
        self.name = name
        self.help = help
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = value

    def merge(self, other: "Gauge") -> None:
        self.value = max(self.value, other.value)

    def to_dict(self) -> dict[str, Any]:
        return {"type": self.kind, "help": self.help, "value": self.value}

    def load(self, data: dict[str, Any]) -> None:
        self.value = data.get("value", 0.0)


class Histogram:
    """Aggregate distribution: count / sum / min / max.

    Deliberately reservoir-free — exact percentiles live in ``ServeMetrics``
    where the full latency lists are needed for reports; the registry keeps
    bounded state so it can be shipped on every ``metrics`` frame.
    """

    kind = "histogram"
    __slots__ = ("name", "help", "count", "sum", "min", "max")

    def __init__(self, name: str, help: str = "") -> None:
        self.name = name
        self.help = help
        self.count = 0
        self.sum = 0.0
        self.min = float("inf")
        self.max = float("-inf")

    def observe(self, value: float) -> None:
        self.count += 1
        self.sum += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value

    @property
    def mean(self) -> float:
        return self.sum / self.count if self.count else 0.0

    def merge(self, other: "Histogram") -> None:
        self.count += other.count
        self.sum += other.sum
        self.min = min(self.min, other.min)
        self.max = max(self.max, other.max)

    def to_dict(self) -> dict[str, Any]:
        out: dict[str, Any] = {
            "type": self.kind,
            "help": self.help,
            "count": self.count,
            "sum": self.sum,
        }
        if self.count:
            out["min"] = self.min
            out["max"] = self.max
        return out

    def load(self, data: dict[str, Any]) -> None:
        self.count = data.get("count", 0)
        self.sum = data.get("sum", 0.0)
        self.min = data.get("min", float("inf"))
        self.max = data.get("max", float("-inf"))


_KINDS: dict[str, type] = {"counter": Counter, "gauge": Gauge, "histogram": Histogram}


class MetricsRegistry:
    """Get-or-create store of named metrics with mergeable snapshots."""

    def __init__(self) -> None:
        self._metrics: dict[str, Counter | Gauge | Histogram] = {}

    def counter(self, name: str, help: str = "") -> Counter:
        return self._get_or_create(name, Counter, help)

    def gauge(self, name: str, help: str = "") -> Gauge:
        return self._get_or_create(name, Gauge, help)

    def histogram(self, name: str, help: str = "") -> Histogram:
        return self._get_or_create(name, Histogram, help)

    def _get_or_create(self, name: str, kind: type, help: str):
        metric = self._metrics.get(name)
        if metric is None:
            metric = kind(name, help)
            self._metrics[name] = metric
        elif type(metric) is not kind:
            raise TypeError(
                f"metric {name!r} already registered as {metric.kind}, requested {kind.kind}"
            )
        return metric

    def get(self, name: str) -> Counter | Gauge | Histogram | None:
        return self._metrics.get(name)

    def names(self) -> list[str]:
        return sorted(self._metrics)

    def __len__(self) -> int:
        return len(self._metrics)

    def __iter__(self) -> Iterator[Counter | Gauge | Histogram]:
        for name in self.names():
            yield self._metrics[name]

    def absorb_cache(self, prefix: str, stats: Any) -> None:
        """Fold any cache-stat struct into ``{prefix}.hits`` etc. counters."""
        snap = cache_snapshot(stats)
        for key in ("hits", "misses", "evictions", "puts", "errors"):
            self.counter(f"{prefix}.{key}").inc(snap[key])
        self.gauge(f"{prefix}.hit_rate").set(snap["hit_rate"])

    def merge(self, other: "MetricsRegistry") -> "MetricsRegistry":
        for name, metric in other._metrics.items():
            mine = self._get_or_create(name, type(metric), metric.help)
            mine.merge(metric)
        return self

    def to_dict(self) -> dict[str, Any]:
        return {name: self._metrics[name].to_dict() for name in self.names()}

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "MetricsRegistry":
        registry = cls()
        for name, payload in data.items():
            kind = _KINDS.get(payload.get("type", "counter"))
            if kind is None:
                raise ValueError(f"unknown metric type {payload.get('type')!r} for {name!r}")
            metric = registry._get_or_create(name, kind, payload.get("help", ""))
            metric.load(payload)
        return registry

    def snapshot(self) -> dict[str, Any]:
        """Flat deterministic view: metric name -> value (histograms expanded)."""
        out: dict[str, Any] = {}
        for metric in self:
            if isinstance(metric, Histogram):
                out[f"{metric.name}.count"] = metric.count
                out[f"{metric.name}.sum"] = metric.sum
                if metric.count:
                    out[f"{metric.name}.min"] = metric.min
                    out[f"{metric.name}.max"] = metric.max
            else:
                out[metric.name] = metric.value
        return out


def cache_snapshot(stats: Any) -> dict[str, Any]:
    """Normalise any cache-stat struct to one canonical shape.

    Works for ``StoreStats`` (hits/misses/puts/evictions/errors),
    ``ServeCacheStats`` (hits/misses/evictions) and ``CacheStats``
    (derived hits/misses/evictions properties).  ``hit_rate`` is always
    guarded against zero lookups.
    """
    hits = int(getattr(stats, "hits", 0))
    misses = int(getattr(stats, "misses", 0))
    lookups = hits + misses
    return {
        "hits": hits,
        "misses": misses,
        "evictions": int(getattr(stats, "evictions", 0)),
        "puts": int(getattr(stats, "puts", 0)),
        "errors": int(getattr(stats, "errors", 0)),
        "lookups": lookups,
        "hit_rate": hits / lookups if lookups else 0.0,
    }


# -- process-wide default registry and collectors ----------------------

_default: MetricsRegistry | None = None
_collectors: list[Callable[[], Any]] = []
_lock = threading.Lock()


def default_registry() -> MetricsRegistry:
    """Process-wide registry for ambient counters (created on first use)."""
    global _default
    with _lock:
        if _default is None:
            _default = MetricsRegistry()
            _maybe_register_env_export()
        return _default


def register_collector(collect: Callable[[], MetricsRegistry]) -> None:
    """Register a collector whose registry should appear in expositions.

    Bound methods (e.g. ``server.observability``) are held via
    :class:`weakref.WeakMethod` so registering never keeps a server alive;
    plain functions are held strongly.
    """
    ref: Callable[[], Callable[[], MetricsRegistry] | None]
    try:
        ref = weakref.WeakMethod(collect)
    except TypeError:

        def ref(fn: Callable[[], MetricsRegistry] = collect):
            return fn

    with _lock:
        _collectors[:] = [r for r in _collectors if r() is not None]
        _collectors.append(ref)


def exposition() -> str:
    """Render the default registry plus all live collectors as Prometheus text."""
    from .export import render_prometheus

    merged = MetricsRegistry().merge(default_registry())
    with _lock:
        live = [ref for ref in _collectors if ref() is not None]
        _collectors[:] = live
    for ref in live:
        collect = ref()
        if collect is None:
            continue
        try:
            merged.merge(collect())
        except Exception:
            continue
    return render_prometheus(merged)


_env_export_registered = False


def _maybe_register_env_export() -> None:
    global _env_export_registered
    if _env_export_registered:
        return
    raw = os.environ.get(ENV_METRICS)
    if raw is None or raw.strip().lower() in _DISABLED_VALUES:
        return
    _env_export_registered = True
    import atexit

    def _export(path: str = raw) -> None:
        try:
            with open(path, "w", encoding="utf-8") as fh:
                fh.write(exposition())
        except OSError:
            pass

    atexit.register(_export)
