"""Exporters: Chrome trace-event JSON and Prometheus text exposition.

The Chrome format loads directly in ``chrome://tracing`` and Perfetto.
Spans become ``ph: "X"`` (complete) events with microsecond timestamps on
the shared monotonic timeline; per-process ``ph: "M"`` metadata names each
lane (``main``, ``worker-0``, ...) so merged fleet traces read naturally.
"""

from __future__ import annotations

import json
import os
from typing import Any, Iterable

from .metrics import Histogram, MetricsRegistry
from .trace import Span

__all__ = [
    "to_chrome_trace",
    "write_chrome_trace",
    "render_prometheus",
    "write_prometheus",
]


def _as_span(item: Span | dict[str, Any]) -> Span:
    return item if isinstance(item, Span) else Span.from_dict(item)


def to_chrome_trace(
    spans: Iterable[Span | dict[str, Any]], dropped: int = 0
) -> dict[str, Any]:
    """Build a Chrome trace-event document from spans (objects or dicts)."""
    events: list[dict[str, Any]] = []
    seen_processes: dict[int, str] = {}
    for item in spans:
        span = _as_span(item)
        if span.pid not in seen_processes:
            seen_processes[span.pid] = span.process
        args: dict[str, Any] = dict(span.attrs)
        args["span_id"] = span.span_id
        if span.parent_id is not None:
            args["parent_id"] = span.parent_id
        if span.trace_id is not None:
            args["trace_id"] = span.trace_id
        events.append(
            {
                "name": span.name,
                "cat": span.category or "repro",
                "ph": "X",
                "ts": span.start_ns / 1000.0,
                "dur": span.duration_ns / 1000.0,
                "pid": span.pid,
                "tid": span.tid,
                "args": args,
            }
        )
    metadata = [
        {
            "name": "process_name",
            "ph": "M",
            "pid": pid,
            "tid": 0,
            "args": {"name": process},
        }
        for pid, process in sorted(seen_processes.items())
    ]
    doc: dict[str, Any] = {
        "traceEvents": metadata + events,
        "displayTimeUnit": "ms",
    }
    if dropped:
        doc["otherData"] = {"dropped_spans": dropped}
    return doc


def write_chrome_trace(
    path: str | os.PathLike[str],
    spans: Iterable[Span | dict[str, Any]],
    dropped: int = 0,
) -> str:
    path = os.fspath(path)
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(to_chrome_trace(spans, dropped=dropped), fh)
    return path


def _prom_name(name: str) -> str:
    """Map dotted metric names to Prometheus-legal snake_case."""
    out = []
    for ch in name:
        out.append(ch if ch.isalnum() or ch == "_" else "_")
    text = "".join(out)
    if text and text[0].isdigit():
        text = "_" + text
    return text


def _prom_value(value: float) -> str:
    if value == float("inf"):
        return "+Inf"
    if value == float("-inf"):
        return "-Inf"
    return repr(value) if isinstance(value, float) else str(value)


def render_prometheus(registry: MetricsRegistry) -> str:
    """Prometheus-style text exposition (counters, gauges, histogram summaries)."""
    lines: list[str] = []
    for metric in registry:
        name = _prom_name(metric.name)
        if metric.help:
            lines.append(f"# HELP {name} {metric.help}")
        if isinstance(metric, Histogram):
            lines.append(f"# TYPE {name} summary")
            lines.append(f"{name}_count {metric.count}")
            lines.append(f"{name}_sum {_prom_value(metric.sum)}")
            if metric.count:
                lines.append(f"{name}_min {_prom_value(metric.min)}")
                lines.append(f"{name}_max {_prom_value(metric.max)}")
        else:
            lines.append(f"# TYPE {name} {metric.kind}")
            lines.append(f"{name} {_prom_value(metric.value)}")
    return "\n".join(lines) + ("\n" if lines else "")


def write_prometheus(path: str | os.PathLike[str], registry: MetricsRegistry) -> str:
    path = os.fspath(path)
    with open(path, "w", encoding="utf-8") as fh:
        fh.write(render_prometheus(registry))
    return path
