"""Process-safe hierarchical tracing.

The tracer records :class:`Span` objects into a bounded in-memory ring
buffer.  Spans are created with a context-manager API::

    from repro.obs.trace import get_tracer

    with get_tracer().span("serve.batch", category="serve", app="blur") as sp:
        ...
        sp.set(size=4)

Design constraints (see docs/observability.md):

* **Disabled by default.**  ``get_tracer()`` returns a module-level
  :class:`NullTracer` singleton unless tracing was installed explicitly or
  via the ``REPRO_TRACE`` environment variable.  A disabled call site costs
  one function call plus an attribute check; the null ``span()`` hands back
  a shared no-op context manager and allocates nothing per call beyond its
  keyword dict.
* **Monotonic clock.**  Timestamps come from :func:`time.monotonic_ns`.
  On Linux ``CLOCK_MONOTONIC`` is system-wide, so spans recorded by fleet
  worker processes on the same machine share a timeline with the
  front-end and can be merged into a single trace.
* **Bounded.**  The ring buffer drops the oldest spans once ``capacity``
  is reached; ``dropped`` counts the casualties so exports can report
  truncation instead of silently lying.
* **Out-of-band.**  Nothing here feeds back into execution: bit-identity
  suites and ``CODEGEN_FORMAT_VERSION`` are untouched by tracing.
"""

from __future__ import annotations

import os
import threading
import time
from collections import deque
from dataclasses import dataclass, field
from typing import Any, Iterable, Iterator

__all__ = [
    "ENV_TRACE",
    "Span",
    "Tracer",
    "NullTracer",
    "NULL_TRACER",
    "get_tracer",
    "install",
    "disable",
    "env_trace_path",
]

ENV_TRACE = "REPRO_TRACE"

#: Env values meaning "explicitly off" (mirrors repro.api.store.DISABLED_VALUES).
_DISABLED_VALUES = {"", "0", "off", "none", "disable", "disabled"}

DEFAULT_CAPACITY = 65536


@dataclass
class Span:
    """One completed (or instant) operation on the shared monotonic timeline."""

    name: str
    category: str = ""
    start_ns: int = 0
    duration_ns: int = 0
    span_id: int = 0
    parent_id: int | None = None
    trace_id: str | None = None
    pid: int = 0
    tid: int = 0
    process: str = "main"
    attrs: dict[str, Any] = field(default_factory=dict)

    def to_dict(self) -> dict[str, Any]:
        """JSON-safe representation used for wire shipping and export."""
        out: dict[str, Any] = {
            "name": self.name,
            "cat": self.category,
            "start_ns": self.start_ns,
            "dur_ns": self.duration_ns,
            "span_id": self.span_id,
            "pid": self.pid,
            "tid": self.tid,
            "process": self.process,
        }
        if self.parent_id is not None:
            out["parent_id"] = self.parent_id
        if self.trace_id is not None:
            out["trace_id"] = self.trace_id
        if self.attrs:
            out["attrs"] = dict(self.attrs)
        return out

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "Span":
        return cls(
            name=str(data.get("name", "?")),
            category=str(data.get("cat", "")),
            start_ns=int(data.get("start_ns", 0)),
            duration_ns=int(data.get("dur_ns", 0)),
            span_id=int(data.get("span_id", 0)),
            parent_id=data.get("parent_id"),
            trace_id=data.get("trace_id"),
            pid=int(data.get("pid", 0)),
            tid=int(data.get("tid", 0)),
            process=str(data.get("process", "main")),
            attrs=dict(data.get("attrs", {})),
        )


class _ActiveSpan:
    """Context manager produced by :meth:`Tracer.span`."""

    __slots__ = ("_tracer", "_name", "_category", "_trace_id", "_attrs", "_start_ns", "_span_id")

    def __init__(
        self,
        tracer: "Tracer",
        name: str,
        category: str,
        trace_id: str | None,
        attrs: dict[str, Any],
    ) -> None:
        self._tracer = tracer
        self._name = name
        self._category = category
        self._trace_id = trace_id
        self._attrs = attrs
        self._start_ns = 0
        self._span_id = 0

    def set(self, **attrs: Any) -> "_ActiveSpan":
        self._attrs.update(attrs)
        return self

    def __enter__(self) -> "_ActiveSpan":
        self._span_id = self._tracer._next_id()
        self._tracer._push(self._span_id)
        self._start_ns = time.monotonic_ns()
        return self

    def __exit__(self, exc_type: Any, exc: Any, tb: Any) -> None:
        end_ns = time.monotonic_ns()
        parent_id = self._tracer._pop(self._span_id)
        if exc_type is not None:
            self._attrs.setdefault("error", exc_type.__name__)
        self._tracer._record(
            Span(
                name=self._name,
                category=self._category,
                start_ns=self._start_ns,
                duration_ns=end_ns - self._start_ns,
                span_id=self._span_id,
                parent_id=parent_id,
                trace_id=self._trace_id,
                pid=self._tracer.pid,
                tid=threading.get_ident() & 0x7FFFFFFF,
                process=self._tracer.process,
                attrs=self._attrs,
            )
        )


class _NoopSpan:
    """Shared do-nothing context manager returned by the null tracer."""

    __slots__ = ()

    def set(self, **attrs: Any) -> "_NoopSpan":
        return self

    def __enter__(self) -> "_NoopSpan":
        return self

    def __exit__(self, exc_type: Any, exc: Any, tb: Any) -> None:
        return None


_NOOP_SPAN = _NoopSpan()


class Tracer:
    """Collects spans into a bounded ring buffer; safe across threads."""

    enabled = True

    def __init__(self, capacity: int = DEFAULT_CAPACITY, process: str = "main") -> None:
        if capacity <= 0:
            raise ValueError(f"tracer capacity must be positive, got {capacity}")
        self.capacity = capacity
        self.process = process
        self.pid = os.getpid()
        self.dropped = 0
        self._spans: deque[Span] = deque(maxlen=capacity)
        self._lock = threading.Lock()
        self._id = 0
        self._stack = threading.local()

    # -- span creation -------------------------------------------------

    def span(
        self, name: str, category: str = "", trace_id: str | None = None, **attrs: Any
    ) -> _ActiveSpan:
        """Open a timed span; attributes may be added later via ``sp.set()``."""
        return _ActiveSpan(self, name, category, trace_id, attrs)

    def point(
        self, name: str, category: str = "", trace_id: str | None = None, **attrs: Any
    ) -> None:
        """Record an instant (zero-duration) event, e.g. a controller decision."""
        now = time.monotonic_ns()
        stack = getattr(self._stack, "ids", None)
        self._record(
            Span(
                name=name,
                category=category,
                start_ns=now,
                duration_ns=0,
                span_id=self._next_id(),
                parent_id=stack[-1] if stack else None,
                trace_id=trace_id,
                pid=self.pid,
                tid=threading.get_ident() & 0x7FFFFFFF,
                process=self.process,
                attrs=attrs,
            )
        )

    def record(
        self,
        name: str,
        category: str = "",
        *,
        start_ns: int,
        duration_ns: int,
        trace_id: str | None = None,
        **attrs: Any,
    ) -> None:
        """Record a span whose start/end were measured by the caller.

        Used where the natural span boundaries do not nest lexically, e.g. a
        serve request measured from arrival to completion.  The recording
        thread's innermost open span (if any) becomes the parent.
        """
        stack = getattr(self._stack, "ids", None)
        self._record(
            Span(
                name=name,
                category=category,
                start_ns=start_ns,
                duration_ns=duration_ns,
                span_id=self._next_id(),
                parent_id=stack[-1] if stack else None,
                trace_id=trace_id,
                pid=self.pid,
                tid=threading.get_ident() & 0x7FFFFFFF,
                process=self.process,
                attrs=attrs,
            )
        )

    # -- buffer access -------------------------------------------------

    def spans(self) -> list[Span]:
        with self._lock:
            return list(self._spans)

    def drain(self) -> list[dict[str, Any]]:
        """Pop every buffered span as JSON-safe dicts (for wire shipping)."""
        with self._lock:
            out = [span.to_dict() for span in self._spans]
            self._spans.clear()
        return out

    def ingest(self, span_dicts: Iterable[dict[str, Any]], process: str | None = None) -> int:
        """Merge spans recorded by another process into this buffer."""
        count = 0
        with self._lock:
            for data in span_dicts:
                span = Span.from_dict(data)
                if process is not None:
                    span.process = process
                if len(self._spans) == self.capacity:
                    self.dropped += 1
                self._spans.append(span)
                count += 1
        return count

    def clear(self) -> None:
        with self._lock:
            self._spans.clear()
            self.dropped = 0

    def __len__(self) -> int:
        with self._lock:
            return len(self._spans)

    def __iter__(self) -> Iterator[Span]:
        return iter(self.spans())

    # -- internals -----------------------------------------------------

    def _next_id(self) -> int:
        with self._lock:
            self._id += 1
            return self._id

    def _push(self, span_id: int) -> None:
        stack = getattr(self._stack, "ids", None)
        if stack is None:
            stack = []
            self._stack.ids = stack
        stack.append(span_id)

    def _pop(self, span_id: int) -> int | None:
        """Pop this span off the thread's stack; return the parent span id."""
        stack = getattr(self._stack, "ids", None)
        if stack and stack[-1] == span_id:
            stack.pop()
        return stack[-1] if stack else None

    def _record(self, span: Span) -> None:
        with self._lock:
            if len(self._spans) == self.capacity:
                self.dropped += 1
            self._spans.append(span)


class NullTracer:
    """Disabled tracer: every operation is a cheap no-op."""

    enabled = False
    capacity = 0
    dropped = 0
    process = "main"
    pid = 0

    def span(self, name: str, category: str = "", trace_id: str | None = None, **attrs: Any):
        return _NOOP_SPAN

    def point(self, name: str, category: str = "", trace_id: str | None = None, **attrs: Any):
        return None

    def record(self, name: str, category: str = "", **kwargs: Any) -> None:
        return None

    def spans(self) -> list[Span]:
        return []

    def drain(self) -> list[dict[str, Any]]:
        return []

    def ingest(self, span_dicts: Iterable[dict[str, Any]], process: str | None = None) -> int:
        return 0

    def clear(self) -> None:
        return None

    def __len__(self) -> int:
        return 0

    def __iter__(self) -> Iterator[Span]:
        return iter(())


NULL_TRACER = NullTracer()

_active: Tracer | NullTracer = NULL_TRACER
_env_checked = False
_lock = threading.Lock()


def env_trace_path() -> str | None:
    """Return the export path requested via ``REPRO_TRACE``, if any."""
    raw = os.environ.get(ENV_TRACE)
    if raw is None or raw.strip().lower() in _DISABLED_VALUES:
        return None
    return raw


def get_tracer() -> Tracer | NullTracer:
    """The process-wide tracer (null unless installed or ``REPRO_TRACE`` set)."""
    global _env_checked
    if not _env_checked:
        path = None
        with _lock:
            if not _env_checked:
                _env_checked = True
                path = env_trace_path()
        if path is not None:
            # Outside _lock: install() re-acquires it.
            install(export_path=path)
    return _active


def install(
    capacity: int = DEFAULT_CAPACITY,
    process: str = "main",
    export_path: str | os.PathLike[str] | None = None,
) -> Tracer:
    """Enable tracing process-wide; optionally export a Chrome trace at exit.

    Fleet workers call this with ``export_path=None`` so only the front-end
    writes the merged trace file.
    """
    global _active, _env_checked
    tracer = Tracer(capacity=capacity, process=process)
    with _lock:
        _active = tracer
        _env_checked = True
    if export_path is not None:
        import atexit

        def _export(path: str = os.fspath(export_path), tr: Tracer = tracer) -> None:
            from .export import write_chrome_trace

            if _active is tr:
                write_chrome_trace(path, tr.spans(), dropped=tr.dropped)

        atexit.register(_export)
    return tracer


def disable() -> None:
    """Reset to the null tracer (used by tests and worker shutdown)."""
    global _active, _env_checked
    with _lock:
        _active = NULL_TRACER
        _env_checked = True
