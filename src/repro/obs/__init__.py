"""Observability: tracing, metrics registry, and exporters.

See docs/observability.md.  Everything here is strictly out-of-band —
enabling or disabling tracing never changes computed results.
"""

from .metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    cache_snapshot,
    default_registry,
)
from .trace import NULL_TRACER, Span, Tracer, disable, get_tracer, install

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "cache_snapshot",
    "default_registry",
    "NULL_TRACER",
    "Span",
    "Tracer",
    "disable",
    "get_tracer",
    "install",
]
