"""``repro.data`` — synthetic input data for the evaluation.

Substitutes for data the paper used but which cannot be redistributed:

* :mod:`repro.data.images` — synthetic grayscale images in three content
  classes (flat / natural / pattern), standing in for the USC-SIPI
  database;
* :mod:`repro.data.hotspot` — Rodinia-style power/temperature grids;
* :mod:`repro.data.datasets` — the dataset registry the experiments use.
"""

from .datasets import (
    DatasetDescription,
    available_datasets,
    describe_dataset,
    figure7_examples,
    hotspot_single,
    hotspot_suite,
    image_arrays,
    image_suite,
    single_image,
)
from .hotspot import (
    AMBIENT_TEMPERATURE,
    HotspotInput,
    RODINIA_SIZES,
    generate_hotspot_input,
    generate_power_grid,
    generate_temperature_grid,
    rodinia_input_suite,
)
from .images import (
    DEFAULT_SIZE,
    IMAGE_MAX,
    IMAGE_MIN,
    ImageClass,
    ImageSpec,
    class_examples,
    flat_image,
    generate_dataset,
    generate_image,
    natural_image,
    pattern_image,
)

__all__ = [
    "AMBIENT_TEMPERATURE",
    "DatasetDescription",
    "DEFAULT_SIZE",
    "HotspotInput",
    "IMAGE_MAX",
    "IMAGE_MIN",
    "ImageClass",
    "ImageSpec",
    "RODINIA_SIZES",
    "available_datasets",
    "class_examples",
    "describe_dataset",
    "figure7_examples",
    "flat_image",
    "generate_dataset",
    "generate_hotspot_input",
    "generate_image",
    "generate_power_grid",
    "generate_temperature_grid",
    "hotspot_single",
    "hotspot_suite",
    "image_arrays",
    "image_suite",
    "natural_image",
    "pattern_image",
    "rodinia_input_suite",
    "single_image",
]
