"""Synthetic grayscale image generation.

The paper evaluates the image-processing benchmarks on 100 grayscale
1024x1024 images from the USC-SIPI database (a mix of the *misc* and
*pattern* catalogues) and analyses how the approximation error depends on
the image content (Figures 6 and 7): images with large uniform areas give
tiny errors, natural "countryside" photographs give errors around the
median, and high-frequency pattern images give the largest errors.

The database cannot be redistributed here, so this module generates a
deterministic synthetic dataset with the same *structure*: three image
classes whose spatial-frequency content spans the same range (flat /
natural / pattern), plus a mixed 100-image suite.  All images are float64
arrays with values in [0, 255], like 8-bit grayscale scans.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

import numpy as np

#: Value range of the generated images (8-bit grayscale convention).
IMAGE_MIN = 0.0
IMAGE_MAX = 255.0

#: Default image side length.  The paper uses 1024; the experiments default
#: to a smaller size so the full sweeps run quickly, and the benchmarks can
#: request the full resolution explicitly.
DEFAULT_SIZE = 256


class ImageClass(str, enum.Enum):
    """Content classes mirroring the paper's qualitative analysis (Figure 7)."""

    FLAT = "flat"
    NATURAL = "natural"
    PATTERN = "pattern"


@dataclass(frozen=True)
class ImageSpec:
    """Description of one generated image."""

    index: int
    image_class: ImageClass
    size: int
    seed: int

    @property
    def name(self) -> str:
        return f"{self.image_class.value}-{self.index:03d}"


def _clip(image: np.ndarray) -> np.ndarray:
    return np.clip(image, IMAGE_MIN, IMAGE_MAX)


def _normalize_to_range(field: np.ndarray, low: float, high: float) -> np.ndarray:
    fmin, fmax = float(field.min()), float(field.max())
    if fmax - fmin < 1e-12:
        return np.full_like(field, (low + high) / 2.0)
    return low + (field - fmin) / (fmax - fmin) * (high - low)


def _spectral_field(size: int, exponent: float, rng: np.random.Generator) -> np.ndarray:
    """Random field with a 1/f^exponent power spectrum (natural-image statistics)."""
    freq_y = np.fft.fftfreq(size)[:, None]
    freq_x = np.fft.fftfreq(size)[None, :]
    radius = np.sqrt(freq_x ** 2 + freq_y ** 2)
    radius[0, 0] = 1.0
    amplitude = radius ** (-exponent)
    amplitude[0, 0] = 0.0
    phase = rng.uniform(0.0, 2.0 * np.pi, size=(size, size))
    spectrum = amplitude * np.exp(1j * phase)
    field = np.fft.ifft2(spectrum).real
    return field


def flat_image(size: int = DEFAULT_SIZE, seed: int = 0) -> np.ndarray:
    """An image dominated by large uniform areas (tiny perforation error).

    A few soft, low-frequency blobs on a constant background plus very mild
    sensor-like noise — the synthetic analogue of the mostly-uniform test
    card in Figure 7a.
    """
    rng = np.random.default_rng(seed)
    image = np.full((size, size), rng.uniform(60.0, 200.0))
    ys, xs = np.mgrid[0:size, 0:size]
    for _ in range(rng.integers(2, 5)):
        cy, cx = rng.uniform(0, size, 2)
        sigma = rng.uniform(size / 4, size / 2)
        level = rng.uniform(-60.0, 60.0)
        image += level * np.exp(-(((ys - cy) ** 2 + (xs - cx) ** 2) / (2 * sigma ** 2)))
    image += rng.normal(0.0, 1.0, size=(size, size))
    return _clip(image)


def natural_image(size: int = DEFAULT_SIZE, seed: int = 0) -> np.ndarray:
    """A "countryside photograph" analogue: 1/f-like spectrum plus soft edges.

    Natural images have power spectra between 1/f and 1/f^2; using an
    exponent of 1.3 plus sensor-like noise and a few occluding shapes gives
    the moderate high-frequency content that produces errors around the
    dataset median (Figure 7b).
    """
    rng = np.random.default_rng(seed)
    base = _spectral_field(size, exponent=1.3, rng=rng)
    image = _normalize_to_range(base, 30.0, 225.0)
    # Horizon: darker lower half with a smooth transition.
    horizon = rng.uniform(0.4, 0.7) * size
    ys = np.arange(size)[:, None]
    transition = 1.0 / (1.0 + np.exp(-(ys - horizon) / (size * 0.01)))
    image = image * (1.0 - 0.25 * transition)
    # A few occluders (tree/boulder-like dark ellipses).
    grid_y, grid_x = np.mgrid[0:size, 0:size]
    for _ in range(rng.integers(2, 6)):
        cy = rng.uniform(horizon, size)
        cx = rng.uniform(0, size)
        ry = rng.uniform(size * 0.02, size * 0.08)
        rx = rng.uniform(size * 0.02, size * 0.10)
        mask = ((grid_y - cy) / ry) ** 2 + ((grid_x - cx) / rx) ** 2 < 1.0
        image[mask] *= rng.uniform(0.5, 0.8)
    image += rng.normal(0.0, 5.0, size=(size, size))
    return _clip(image)


def pattern_image(size: int = DEFAULT_SIZE, seed: int = 0) -> np.ndarray:
    """A high-frequency test pattern (largest perforation error, Figure 7c).

    Mixes fine stripes, a checkerboard and a zone-plate-like chirp; nearly
    every row differs from its neighbours, which is exactly the content
    row perforation struggles with.
    """
    rng = np.random.default_rng(seed)
    ys, xs = np.mgrid[0:size, 0:size].astype(np.float64)
    kind = int(rng.integers(0, 3))
    if kind == 0:
        period = float(rng.integers(2, 6))
        pattern = np.sin(2.0 * np.pi * ys / period) * np.sin(2.0 * np.pi * xs / period)
    elif kind == 1:
        period = int(rng.integers(1, 4))
        pattern = (((ys // period) + (xs // period)) % 2).astype(np.float64) * 2.0 - 1.0
    else:
        # Zone plate: instantaneous frequency grows towards the corners.
        cy, cx = size / 2.0, size / 2.0
        radius2 = (ys - cy) ** 2 + (xs - cx) ** 2
        pattern = np.cos(np.pi * radius2 / size)
    stripes = np.sin(2.0 * np.pi * ys / float(rng.integers(2, 5)))
    smooth = _spectral_field(size, exponent=2.0, rng=rng)
    smooth = _normalize_to_range(smooth, -1.0, 1.0)
    mixed = 0.55 * pattern + 0.2 * stripes + 0.25 * smooth
    image = _normalize_to_range(mixed, 15.0, 240.0)
    image += rng.normal(0.0, 1.0, size=(size, size))
    return _clip(image)


_GENERATORS = {
    ImageClass.FLAT: flat_image,
    ImageClass.NATURAL: natural_image,
    ImageClass.PATTERN: pattern_image,
}


def generate_image(
    image_class: ImageClass | str, size: int = DEFAULT_SIZE, seed: int = 0
) -> np.ndarray:
    """Generate one image of the requested class."""
    image_class = ImageClass(image_class)
    return _GENERATORS[image_class](size=size, seed=seed)


def generate_dataset(
    count: int = 100,
    size: int = DEFAULT_SIZE,
    seed: int = 2018,
    class_mix: dict[ImageClass, float] | None = None,
) -> list[tuple[ImageSpec, np.ndarray]]:
    """Generate a mixed dataset standing in for the USC-SIPI selection.

    The default mix (40% natural, 30% flat, 30% pattern) reproduces the
    overall shape of the paper's error distributions: a sub-5% median with
    a tail of pattern-image outliers up to ~20%.
    """
    if count <= 0:
        raise ValueError("count must be positive")
    if class_mix is None:
        class_mix = {
            ImageClass.NATURAL: 0.4,
            ImageClass.FLAT: 0.3,
            ImageClass.PATTERN: 0.3,
        }
    total = sum(class_mix.values())
    classes: list[ImageClass] = []
    for image_class, fraction in class_mix.items():
        classes.extend([image_class] * int(round(count * fraction / total)))
    while len(classes) < count:
        classes.append(ImageClass.NATURAL)
    classes = classes[:count]

    dataset = []
    for index, image_class in enumerate(classes):
        spec = ImageSpec(index=index, image_class=image_class, size=size, seed=seed + index)
        dataset.append((spec, generate_image(image_class, size=size, seed=spec.seed)))
    return dataset


def class_examples(size: int = DEFAULT_SIZE, seed: int = 7) -> dict[ImageClass, np.ndarray]:
    """One representative image per class (used by the Figure 7 experiment)."""
    return {
        image_class: generate_image(image_class, size=size, seed=seed + offset)
        for offset, image_class in enumerate(ImageClass)
    }
