"""Dataset registry used by the experiments.

Centralises the datasets the evaluation needs so that every experiment and
benchmark pulls identical, deterministically seeded inputs:

* the 100-image mixed suite (stand-in for the USC-SIPI selection);
* one example image per content class (Figure 7);
* the Rodinia-style Hotspot input suite (8 sizes).

Datasets are cached in-process because several figures reuse the same
inputs.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache

import numpy as np

from .hotspot import HotspotInput, RODINIA_SIZES, rodinia_input_suite
from .images import (
    DEFAULT_SIZE,
    ImageClass,
    ImageSpec,
    class_examples,
    generate_dataset,
    generate_image,
)


@dataclass(frozen=True)
class DatasetDescription:
    """Metadata of a named dataset."""

    name: str
    kind: str
    count: int
    notes: str


_DESCRIPTIONS = {
    "sipi-substitute": DatasetDescription(
        name="sipi-substitute",
        kind="grayscale images",
        count=100,
        notes="synthetic stand-in for the USC-SIPI misc+pattern selection",
    ),
    "class-examples": DatasetDescription(
        name="class-examples",
        kind="grayscale images",
        count=3,
        notes="one flat, one natural, one pattern image (Figure 7)",
    ),
    "hotspot-rodinia": DatasetDescription(
        name="hotspot-rodinia",
        kind="power/temperature grids",
        count=len(RODINIA_SIZES),
        notes="synthetic substitutes for the 8 Rodinia Hotspot input sizes",
    ),
}


def available_datasets() -> list[str]:
    """Names of the registered datasets."""
    return sorted(_DESCRIPTIONS)


def describe_dataset(name: str) -> DatasetDescription:
    """Metadata of a registered dataset."""
    try:
        return _DESCRIPTIONS[name]
    except KeyError as exc:
        raise KeyError(
            f"unknown dataset {name!r}; available: {available_datasets()}"
        ) from exc


# ---------------------------------------------------------------------------
# Image datasets
# ---------------------------------------------------------------------------
@lru_cache(maxsize=8)
def image_suite(
    count: int = 100, size: int = DEFAULT_SIZE, seed: int = 2018
) -> tuple[tuple[ImageSpec, np.ndarray], ...]:
    """The mixed image suite (cached)."""
    return tuple(generate_dataset(count=count, size=size, seed=seed))


def image_arrays(count: int = 100, size: int = DEFAULT_SIZE, seed: int = 2018) -> list[np.ndarray]:
    """Just the image arrays of :func:`image_suite` (most experiments only need these)."""
    return [image for _, image in image_suite(count=count, size=size, seed=seed)]


@lru_cache(maxsize=8)
def figure7_examples(size: int = DEFAULT_SIZE, seed: int = 7) -> dict[ImageClass, np.ndarray]:
    """One image per content class, as used by the Figure 7 experiment."""
    return class_examples(size=size, seed=seed)


def single_image(
    image_class: ImageClass | str = ImageClass.NATURAL,
    size: int = DEFAULT_SIZE,
    seed: int = 42,
) -> np.ndarray:
    """One deterministic image (used by the single-input experiments)."""
    return generate_image(image_class, size=size, seed=seed)


# ---------------------------------------------------------------------------
# Hotspot datasets
# ---------------------------------------------------------------------------
@lru_cache(maxsize=4)
def hotspot_suite(max_size: int | None = 256, seed: int = 2018) -> tuple[HotspotInput, ...]:
    """The Rodinia-style Hotspot suite (cached).

    The default caps grids at 256x256 so test and example runs stay fast;
    the benchmark harness passes ``max_size=None`` for the full suite.
    """
    return tuple(rodinia_input_suite(seed=seed, max_size=max_size))


def hotspot_single(size: int = 256, seed: int = 2018) -> HotspotInput:
    """A single Hotspot instance of the requested size."""
    from .hotspot import generate_hotspot_input

    return generate_hotspot_input(size, seed=seed)
