"""Ablation benchmarks for the design choices DESIGN.md calls out.

These go beyond the paper's figures and isolate the contribution of the
individual ingredients:

* local-memory staging on/off (the "local memory-aware" part of the title);
* reconstruction technique (NN vs LI) across image classes;
* perforation aggressiveness (Rows1 vs Rows2) on the speedup/error knee;
* the device profile (FirePro-class vs a high-bandwidth GPU), showing that
  the technique matters most when DRAM bandwidth/latency is the bottleneck.
"""

from bench_utils import run_once

from repro.apps import GaussianApp, Sobel5App
from repro.clsim import TimingModel, firepro_w5100, generic_hbm_gpu
from repro.core import (
    ACCURATE_CONFIG,
    LINEAR_INTERPOLATION,
    NEAREST_NEIGHBOR,
    ROWS1_NN,
    ROWS2_NN,
    STENCIL1_NN,
    ApproximationConfig,
    compute_error,
    evaluate_configuration,
)
from repro.data import generate_image
from repro.experiments.common import format_table


def test_ablation_local_memory_staging(benchmark, archive):
    """Staging the stencil input in local memory is what makes the accurate
    kernel fast — and perforation still beats that optimised version."""

    def run():
        app = Sobel5App()
        image = generate_image("natural", size=1024, seed=42)
        device = firepro_w5100()
        model = TimingModel(device)
        global_size = app.global_size(image)
        naive_profile, nd = app.profile(ACCURATE_CONFIG, global_size)
        naive = model.estimate(naive_profile, nd).total_time_s
        # The optimised (local-memory) accurate kernel: same scheme profile
        # machinery, but with the full tile staged.
        app.baseline_uses_local_memory = True
        staged_profile, nd = app.profile(ACCURATE_CONFIG, global_size)
        staged = model.estimate(staged_profile, nd).total_time_s
        app.baseline_uses_local_memory = False
        perforated = evaluate_configuration(app, image, STENCIL1_NN, device=device)
        return naive, staged, perforated.approx_time_s

    naive, staged, perforated = run_once(benchmark, run)
    rows = [
        ["naive accurate (global reads)", f"{naive * 1e3:.3f} ms", "1.00x"],
        ["accurate + local staging", f"{staged * 1e3:.3f} ms", f"{naive / staged:.2f}x"],
        ["stencil perforation (ours)", f"{perforated * 1e3:.3f} ms", f"{naive / perforated:.2f}x"],
    ]
    archive(
        "ablation_local_memory",
        "Ablation: local-memory staging (Sobel5, 1024x1024)\n"
        + format_table(["Variant", "Runtime", "Speedup vs naive"], rows),
    )
    assert staged < naive
    assert perforated < staged


def test_ablation_reconstruction_technique(benchmark, archive):
    """LI beats NN on smooth content; the advantage shrinks on patterns."""

    def run():
        app = GaussianApp()
        results = {}
        for image_class in ("flat", "natural", "pattern"):
            image = generate_image(image_class, size=512, seed=11)
            reference = app.reference(image)
            row = {}
            for label, technique in (("NN", NEAREST_NEIGHBOR), ("LI", LINEAR_INTERPOLATION)):
                config = ApproximationConfig(scheme=ROWS1_NN.scheme, reconstruction=technique)
                row[label] = compute_error(
                    reference, app.approximate(image, config), app.error_metric
                )
            results[image_class] = row
        return results

    results = run_once(benchmark, run)
    rows = [
        [image_class, f"{row['NN'] * 100:.2f}%", f"{row['LI'] * 100:.2f}%"]
        for image_class, row in results.items()
    ]
    archive(
        "ablation_reconstruction",
        "Ablation: reconstruction technique (Gaussian, Rows1)\n"
        + format_table(["Image class", "Rows1:NN error", "Rows1:LI error"], rows),
    )
    for row in results.values():
        assert row["LI"] <= row["NN"] * 1.05


def test_ablation_aggressiveness_and_device(benchmark, archive):
    """Rows2 buys its extra speedup with a large error increase, and the
    absolute time saved by perforation shrinks on a bandwidth-rich device
    (the kernels stop being memory-bound)."""

    def run():
        app = GaussianApp()
        image = generate_image("natural", size=1024, seed=42)
        firepro = firepro_w5100()
        hbm = generic_hbm_gpu()
        out = {}
        for device_name, device in (("firepro-w5100", firepro), ("generic-hbm", hbm)):
            rows1 = evaluate_configuration(app, image, ROWS1_NN, device=device)
            rows2 = evaluate_configuration(app, image, ROWS2_NN, device=device)
            out[device_name] = {"rows1": rows1, "rows2": rows2}
        return out

    results = run_once(benchmark, run)
    rows = []
    for device_name, entry in results.items():
        for label, result in entry.items():
            rows.append(
                [device_name, label, f"{result.speedup:.2f}x", f"{result.error * 100:.2f}%"]
            )
    archive(
        "ablation_aggressiveness_device",
        "Ablation: aggressiveness and device profile (Gaussian, 1024x1024)\n"
        + format_table(["Device", "Scheme", "Speedup", "Error"], rows),
    )
    firepro = results["firepro-w5100"]
    hbm = results["generic-hbm"]
    assert firepro["rows2"].error > firepro["rows1"].error
    assert firepro["rows2"].speedup > firepro["rows1"].speedup
    # On the bandwidth-rich device the kernels are much faster to begin with,
    # so the absolute time perforation saves per launch is far smaller.
    firepro_saving = firepro["rows1"].baseline_time_s - firepro["rows1"].approx_time_s
    hbm_saving = hbm["rows1"].baseline_time_s - hbm["rows1"].approx_time_s
    assert hbm_saving < firepro_saving
