#!/usr/bin/env python
"""Benchmark-regression gate.

Compares the machine-readable benchmark records emitted by the backend
benchmarks (``benchmarks/results/*.json``, written by ``pytest benchmarks``)
against the committed baseline (``benchmarks/baseline.json``).  A result
regresses when its ``speedup`` falls below

    max(baseline_required, record_required, baseline_speedup * (1 - tolerance))

i.e. the hard acceptance floor always applies, and on top of it the
recorded baseline may only erode by ``--tolerance`` (default 50% — CI
machines are noisy, speedup *ratios* less so).  A result record may
*raise* the bar for its own run by declaring ``required_speedup`` — the
machine-aware benchmarks (``fleet_scaling``) use this so a many-core CI
runner is held to the full scaling floor even when the committed baseline
was recorded on a smaller machine; a record can never lower the
baseline's floor.  Missing results for a baselined benchmark fail too: a
benchmark that silently stops running is itself a regression.

Usage:
    python benchmarks/check_regression.py                # gate (CI)
    python benchmarks/check_regression.py --tolerance 0.3
    python benchmarks/check_regression.py --write-baseline  # refresh baseline
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

BENCH_DIR = Path(__file__).parent
BASELINE_PATH = BENCH_DIR / "baseline.json"
RESULTS_DIR = BENCH_DIR / "results"

DEFAULT_TOLERANCE = 0.5


def load_results() -> dict[str, dict]:
    """All machine-readable records under ``results/``, keyed by benchmark."""
    records: dict[str, dict] = {}
    for path in sorted(RESULTS_DIR.glob("*.json")):
        try:
            record = json.loads(path.read_text(encoding="utf-8"))
        except (OSError, json.JSONDecodeError) as exc:
            print(f"warning: skipping unreadable result {path.name}: {exc}")
            continue
        name = record.get("benchmark", path.stem)
        records[name] = record
    return records


def load_baseline() -> dict[str, dict]:
    data = json.loads(BASELINE_PATH.read_text(encoding="utf-8"))
    return {entry["benchmark"]: entry for entry in data["benchmarks"]}


def write_baseline(results: dict[str, dict]) -> None:
    entries = [
        {
            "benchmark": name,
            "app": record.get("app"),
            "backend": record.get("backend"),
            "baseline_backend": record.get("baseline_backend"),
            "speedup": round(float(record["speedup"]), 2),
            "required_speedup": float(record.get("required_speedup", 1.0)),
        }
        for name, record in sorted(results.items())
        if "speedup" in record
    ]
    BASELINE_PATH.write_text(
        json.dumps({"benchmarks": entries}, indent=2, sort_keys=True) + "\n",
        encoding="utf-8",
    )
    print(f"wrote {BASELINE_PATH} with {len(entries)} entries")


def check(tolerance: float) -> int:
    baseline = load_baseline()
    results = load_results()
    failures = []
    for name, expected in sorted(baseline.items()):
        record = results.get(name)
        if record is None:
            failures.append(f"{name}: no result recorded (did the benchmark run?)")
            continue
        speedup = float(record.get("speedup", 0.0))
        floor = max(
            float(expected.get("required_speedup", 1.0)),
            # A record may declare a stricter machine-appropriate floor for
            # its own run (never a looser one — max() keeps the baseline's).
            float(record.get("required_speedup", 0.0)),
            float(expected["speedup"]) * (1.0 - tolerance),
        )
        status = "ok" if speedup >= floor else "REGRESSION"
        print(
            f"{name}: {record.get('backend')} vs {record.get('baseline_backend')} "
            f"= {speedup:.2f}x (floor {floor:.2f}x, baseline "
            f"{expected['speedup']:.2f}x) {status}"
        )
        if speedup < floor:
            failures.append(
                f"{name}: speedup {speedup:.2f}x below floor {floor:.2f}x"
            )
    if failures:
        print("\nbenchmark regression check FAILED:")
        for failure in failures:
            print(f"  - {failure}")
        return 1
    print(f"\nbenchmark regression check passed ({len(baseline)} benchmarks)")
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--tolerance",
        type=float,
        default=DEFAULT_TOLERANCE,
        help="allowed fraction of baseline-speedup erosion (default 0.5)",
    )
    parser.add_argument(
        "--write-baseline",
        action="store_true",
        help="refresh baseline.json from the current results instead of gating",
    )
    args = parser.parse_args(argv)
    if not 0.0 <= args.tolerance < 1.0:
        parser.error("--tolerance must be in [0, 1)")
    if args.write_baseline:
        write_baseline(load_results())
        return 0
    return check(args.tolerance)


if __name__ == "__main__":
    sys.exit(main())
