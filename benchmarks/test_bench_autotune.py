"""Benchmark: autotuner evaluations-to-reach-the-reference-Pareto-front.

Runs the exhaustive grid sweep over the full autotuning search space on
gaussian (the reference procedure, generalising the paper's Section
6.3/6.4 parameter study) and the successive-halving multi-fidelity
strategy, and records how many *full-fidelity* evaluations each spent.

Acceptance bar: successive-halving must reproduce the exhaustive sweep's
Pareto front (same configurations) using at most 40% of the exhaustive
full-fidelity evaluations — recorded as the ratio
``exhaustive / successive-halving`` with a required floor of 2.5x.  The
machine-readable record feeds ``check_regression.py``, so a silent
efficiency regression (the strategy needing more evaluations to reach the
front) fails the build.
"""

from __future__ import annotations

from bench_utils import run_once

from repro.experiments.autotune_bench import REQUIRED_EVAL_RATIO, render, run

#: Workers are pinned so the recorded evaluation counts are obviously
#: machine-independent (they are in any case: parallel == serial).
WORKERS = 4


def test_gaussian_autotune_evaluations(benchmark, archive, archive_json):
    def autotune_bench():
        return run(quick=False, db=False, workers=WORKERS)

    result = run_once(benchmark, autotune_bench)

    archive("autotune_evals", render(result))
    archive_json(
        "autotune_evals",
        {
            "benchmark": "autotune_evals",
            "app": result.app_name,
            "backend": "successive-halving",
            "baseline_backend": "exhaustive-grid",
            "image_size": result.size,
            "exhaustive_full_evaluations": result.exhaustive.full_evaluations,
            "strategy_full_evaluations": result.tuned.full_evaluations,
            "strategy_total_evaluations": result.tuned.evaluations,
            "fronts_match": result.fronts_match,
            "speedup": result.eval_ratio,
            "required_speedup": REQUIRED_EVAL_RATIO,
        },
    )

    # The strategy must find the *same* front, not merely a cheap one.
    assert result.fronts_match
    assert result.eval_ratio >= REQUIRED_EVAL_RATIO
