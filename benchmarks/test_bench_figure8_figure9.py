"""Benchmarks regenerating Figure 8 (scheme parameters) and Figure 9
(work-group size tuning), both at the paper's 1024x1024 resolution.
"""

from bench_utils import run_once

from repro.experiments import figure8, figure9


def test_figure8_perforation_schemes(benchmark, archive):
    result = run_once(benchmark, lambda: figure8.run(image_size=1024))
    rendered = figure8.render(result)
    archive("figure8", rendered)

    for name in ("gaussian", "median"):
        by_label = {p.label: p for p in result.sweeps[name].points}
        # Error ordering of the paper: Stencil1 < Rows1:LI < Rows1:NN < Rows2:NN.
        assert by_label["Stencil1:NN"].error < by_label["Rows1:NN"].error
        assert by_label["Rows1:LI"].error <= by_label["Rows1:NN"].error
        assert by_label["Rows2:NN"].error >= by_label["Rows1:NN"].error
        # Paper: the stencil scheme's error is always below 1%.
        assert by_label["Stencil1:NN"].error < 0.01

    # Inversion has no stencil point (1x1 filter).
    assert "Stencil1:NN" not in {p.label for p in result.sweeps["inversion"].points}

    # Linear interpolation reduces the Rows1 error for every application
    # (paper: -45% Gaussian, -21% Inversion, -34% Median).
    assert all(reduction > 0.05 for reduction in result.li_error_reduction.values())


def test_figure9_work_group_tuning(benchmark, archive):
    result = run_once(benchmark, lambda: figure9.run(image_size=1024))
    rendered = figure9.render(result)
    archive("figure9", rendered)

    for name, timings in result.timings.items():
        baseline = {t.work_group: t.runtime_s for t in timings if t.variant == "Baseline"}
        # Paper observation 1: configurations with x >= y are faster (the
        # extreme 2x128 shape is the slowest of all).
        worst = max(baseline, key=baseline.get)
        assert worst[0] < worst[1]
        assert baseline[(128, 2)] < baseline[(2, 128)]
        # The approximate kernels are faster than the baseline at the same shape.
        for variant in {t.variant for t in timings} - {"Baseline"}:
            approx = {t.work_group: t.runtime_s for t in timings if t.variant == variant}
            assert approx[(16, 16)] < baseline[(16, 16)]

    # Paper observation 2: the best shape is x-major for every variant.
    for per_variant in result.best_shape.values():
        for shape in per_variant.values():
            assert shape[0] >= shape[1]
