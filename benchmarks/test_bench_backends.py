"""Benchmark: execution-backend speedups on the gaussian compiler-path sweep.

Runs the paper's four default configurations of the Gaussian kernel through
the *compiled* path (kernellang passes + simulated execution) under all
three execution backends and records the wall-clock ratios:

* ``vectorized`` over ``interpreter`` — the work-group SIMT lowering
  (acceptance bar: >= 5x);
* ``codegen`` over ``vectorized`` — AST-walk overhead removed by the
  source-specializing backend (acceptance bar: >= 2x).

Each sweep is timed warm (one untimed priming sweep first): the codegen
backend's lowering is amortized across runs by design — per-kernel memo,
process-wide content-key memo and the on-disk artifact cache — and the
vectorized backend equally caches its per-kernel lowering, so warm times
are what sweeps, serve sessions and CI actually see.  Results are archived
both human-readable (``results/*.txt``) and machine-readable
(``results/*.json``) — the JSON records feed ``check_regression.py``.
"""

from __future__ import annotations

import time

import numpy as np
from bench_utils import run_once

from repro.api import PerforationEngine
from repro.data import generate_image

#: Paper-scale-ish input: big enough that per-work-item interpretation is
#: clearly the bottleneck, small enough for the harness to finish quickly.
IMAGE_SIZE = 64

#: Required advantage of the vectorized backend over the interpreter.
REQUIRED_SPEEDUP = 5.0

#: Required advantage of the codegen backend over the vectorized backend.
REQUIRED_CODEGEN_SPEEDUP = 2.0


def _sweep(engine: PerforationEngine, image, backend: str):
    start = time.perf_counter()
    outputs = engine.compiled_sweep("gaussian", image, backend=backend)
    return outputs, time.perf_counter() - start


def _timed_sweep(engine, image, backend, repeats: int = 3):
    """Best-of-N warm sweep (one untimed priming run already happened).

    Best-of-3 keeps the recorded ratio stable on noisy shared CI runners;
    the regression gate adds a tolerance on top, but the hard acceptance
    floors (5x / 2x) are asserted here directly.
    """
    best = None
    outputs = None
    for _ in range(repeats):
        outputs, seconds = _sweep(engine, image, backend)
        best = seconds if best is None else min(best, seconds)
    return outputs, best


def test_gaussian_compiled_sweep_backend_speedup(benchmark, archive, archive_json):
    image = generate_image("natural", size=IMAGE_SIZE, seed=42)
    engine = PerforationEngine()

    interp_outputs, interp_seconds = _sweep(engine, image, "interpreter")
    _sweep(engine, image, "vectorized")  # prime the per-kernel lowering

    def vectorized_sweep():
        return _timed_sweep(engine, image, "vectorized")

    vec_outputs, vec_seconds = run_once(benchmark, vectorized_sweep)

    speedup = interp_seconds / vec_seconds
    lines = [
        "Execution-backend speedup, gaussian compiled sweep "
        f"({IMAGE_SIZE}x{IMAGE_SIZE}, {len(interp_outputs)} configurations)",
        f"interpreter backend : {interp_seconds * 1e3:9.1f} ms",
        f"vectorized backend  : {vec_seconds * 1e3:9.1f} ms",
        f"speedup             : {speedup:9.1f}x (required: >= {REQUIRED_SPEEDUP:.0f}x)",
    ]
    archive("backend_speedup", "\n".join(lines))
    archive_json(
        "backend_speedup",
        {
            "benchmark": "backend_speedup",
            "app": "gaussian",
            "backend": "vectorized",
            "baseline_backend": "interpreter",
            "image_size": IMAGE_SIZE,
            "configurations": len(interp_outputs),
            "seconds": {"interpreter": interp_seconds, "vectorized": vec_seconds},
            "speedup": speedup,
            "required_speedup": REQUIRED_SPEEDUP,
        },
    )

    # Bit-identical outputs at full size, for every configuration.
    assert sorted(vec_outputs) == sorted(interp_outputs)
    for label, output in vec_outputs.items():
        np.testing.assert_array_equal(output, interp_outputs[label], err_msg=label)

    assert speedup >= REQUIRED_SPEEDUP


def test_gaussian_compiled_sweep_codegen_speedup(benchmark, archive, archive_json):
    image = generate_image("natural", size=IMAGE_SIZE, seed=42)
    engine = PerforationEngine()

    # Prime both backends: first runs pay the (cached) lowering.
    _sweep(engine, image, "vectorized")
    _sweep(engine, image, "codegen")

    vec_outputs, vec_seconds = _timed_sweep(engine, image, "vectorized")

    def codegen_sweep():
        return _timed_sweep(engine, image, "codegen")

    cg_outputs, cg_seconds = run_once(benchmark, codegen_sweep)

    speedup = vec_seconds / cg_seconds
    lines = [
        "Codegen-backend speedup, gaussian compiled sweep "
        f"({IMAGE_SIZE}x{IMAGE_SIZE}, {len(vec_outputs)} configurations, warm "
        "artifact cache)",
        f"vectorized backend  : {vec_seconds * 1e3:9.1f} ms",
        f"codegen backend     : {cg_seconds * 1e3:9.1f} ms",
        f"speedup             : {speedup:9.2f}x "
        f"(required: >= {REQUIRED_CODEGEN_SPEEDUP:.0f}x)",
    ]
    archive("codegen_speedup", "\n".join(lines))
    archive_json(
        "codegen_speedup",
        {
            "benchmark": "codegen_speedup",
            "app": "gaussian",
            "backend": "codegen",
            "baseline_backend": "vectorized",
            "image_size": IMAGE_SIZE,
            "configurations": len(vec_outputs),
            "seconds": {"vectorized": vec_seconds, "codegen": cg_seconds},
            "speedup": speedup,
            "required_speedup": REQUIRED_CODEGEN_SPEEDUP,
        },
    )

    # Bit-identical outputs at full size, for every configuration.
    assert sorted(cg_outputs) == sorted(vec_outputs)
    for label, output in cg_outputs.items():
        np.testing.assert_array_equal(output, vec_outputs[label], err_msg=label)

    assert speedup >= REQUIRED_CODEGEN_SPEEDUP
