"""Benchmark: execution-backend speedup on the gaussian compiler-path sweep.

Runs the paper's four default configurations of the Gaussian kernel through
the *compiled* path (kernellang passes + simulated execution) under both
execution backends and records the wall-clock ratio.  The vectorized
backend executes whole work groups as batched NumPy operations; the
acceptance bar for the backend subsystem is a >= 5x speedup over the
per-work-item interpreter backend, with bit-identical outputs (the
conformance suite under ``tests/clsim`` checks outputs and counters on
every CI run; this benchmark re-checks outputs at full size).
"""

from __future__ import annotations

import time

import numpy as np
from bench_utils import run_once

from repro.api import PerforationEngine
from repro.data import generate_image

#: Paper-scale-ish input: big enough that per-work-item interpretation is
#: clearly the bottleneck, small enough for the harness to finish quickly.
IMAGE_SIZE = 64

#: Required advantage of the vectorized backend (acceptance criterion).
REQUIRED_SPEEDUP = 5.0


def _sweep(engine: PerforationEngine, image, backend: str):
    start = time.perf_counter()
    outputs = engine.compiled_sweep("gaussian", image, backend=backend)
    return outputs, time.perf_counter() - start


def test_gaussian_compiled_sweep_backend_speedup(benchmark, archive):
    image = generate_image("natural", size=IMAGE_SIZE, seed=42)
    engine = PerforationEngine()

    interp_outputs, interp_seconds = _sweep(engine, image, "interpreter")

    def vectorized_sweep():
        return _sweep(engine, image, "vectorized")

    vec_outputs, vec_seconds = run_once(benchmark, vectorized_sweep)

    speedup = interp_seconds / vec_seconds
    lines = [
        "Execution-backend speedup, gaussian compiled sweep "
        f"({IMAGE_SIZE}x{IMAGE_SIZE}, {len(interp_outputs)} configurations)",
        f"interpreter backend : {interp_seconds * 1e3:9.1f} ms",
        f"vectorized backend  : {vec_seconds * 1e3:9.1f} ms",
        f"speedup             : {speedup:9.1f}x (required: >= {REQUIRED_SPEEDUP:.0f}x)",
    ]
    archive("backend_speedup", "\n".join(lines))

    # Bit-identical outputs at full size, for every configuration.
    assert sorted(vec_outputs) == sorted(interp_outputs)
    for label, output in vec_outputs.items():
        np.testing.assert_array_equal(output, interp_outputs[label], err_msg=label)

    assert speedup >= REQUIRED_SPEEDUP
