"""Benchmark regenerating Figure 10: the Pareto comparison against Paraprox.

Paper findings the shape checks cover:

* for Gaussian and Median our Stencil1/Rows1 configurations reach similar
  or better speedup than the Paraprox output-approximation schemes at a
  much lower error (our points dominate);
* for Inversion both our Rows1 and Paraprox's Rows are Pareto-optimal;
* Paraprox's Cols scheme is slower than the accurate kernel (bad alignment
  with the row-major memory layout).
"""

from bench_utils import run_once

from repro.experiments import figure10


def test_figure10_pareto_comparison(benchmark, archive):
    result = run_once(benchmark, lambda: figure10.run(image_size=1024))
    rendered = figure10.render(result)
    archive("figure10", rendered)

    # Our schemes dominate every Paraprox scheme for the stencil applications.
    assert figure10.ours_dominates_paraprox(result, "gaussian")
    assert figure10.ours_dominates_paraprox(result, "median")

    for name, points in result.points.items():
        ours = [p for p in points if p.family == "ours"]
        paraprox = [p for p in points if p.family == "paraprox"]
        # At least one of our configurations is Pareto-optimal everywhere.
        assert any(p.pareto_optimal for p in ours), name
        # Paraprox Cols1 is slower than the accurate kernel (speedup < 1).
        cols = [p for p in paraprox if p.label == "Cols1"]
        assert cols and cols[0].speedup < 1.0

    # Gaussian numbers: stencil error well below 1%, both our schemes >1.5x.
    gaussian = {p.label: p for p in result.points["gaussian"]}
    assert gaussian["Stencil1:NN"].error < 0.01
    assert gaussian["Stencil1:NN"].speedup > 1.5
    assert gaussian["Rows1:NN"].speedup > 1.5
    # Paraprox needs a much larger error for comparable speedup.
    assert gaussian["Rows1"].error > gaussian["Rows1:NN"].error
