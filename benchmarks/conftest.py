"""Shared helpers for the benchmark harness.

Every benchmark regenerates one table or figure of the paper, prints the
same rows/series the paper reports, and archives the rendering under
``benchmarks/results/`` so the numbers can be inspected (and quoted in
EXPERIMENTS.md) after a run.

pytest-benchmark is used in ``pedantic`` mode with a single round: the
experiments are deterministic and each one is itself a sizeable workload,
so the interesting output is the experiment result, with the runtime of the
harness recorded as the benchmark value.
"""

from __future__ import annotations

from pathlib import Path

import pytest

RESULTS_DIR = Path(__file__).parent / "results"


@pytest.fixture(scope="session")
def results_dir() -> Path:
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


@pytest.fixture()
def archive(results_dir):
    """Return a function that archives a rendered experiment and echoes it."""

    def _archive(name: str, rendered: str) -> None:
        path = results_dir / f"{name}.txt"
        path.write_text(rendered + "\n", encoding="utf-8")
        print("\n" + rendered)

    return _archive


@pytest.fixture()
def archive_json(results_dir):
    """Archive a machine-readable result record under ``results/<name>.json``.

    These records feed ``benchmarks/check_regression.py``: CI compares the
    ``speedup`` field of each record against the committed baseline
    (``benchmarks/baseline.json``) so a silent perf regression fails the
    build.
    """
    import json

    def _archive_json(name: str, record: dict) -> None:
        path = results_dir / f"{name}.json"
        path.write_text(
            json.dumps(record, indent=2, sort_keys=True) + "\n", encoding="utf-8"
        )

    return _archive_json

