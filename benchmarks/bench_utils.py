"""Utility helpers shared by the benchmark modules."""

from __future__ import annotations


def run_once(benchmark, func):
    """Run ``func`` exactly once under pytest-benchmark and return its result.

    The experiments are deterministic and each is itself a sizeable
    workload, so a single round is the right granularity.
    """
    return benchmark.pedantic(func, rounds=1, iterations=1, warmup_rounds=0)
