"""Benchmarks regenerating Figure 6 and the headline claim.

Figure 6: error distribution over the input dataset plus the speedup of the
per-application Pareto configuration.  Paper speedups: Gaussian 2.2x,
Inversion 1.59x, Median 1.62x, Hotspot 1.98x, Sobel3 1.79x, Sobel5 3.05x.
Headline: 1.6x-3x speedup at ~6% average error.

The dataset is scaled down from the paper's 100 x 1024^2 images to
40 x 512^2 so the harness completes in minutes; the ordering/shape checks
are resolution-independent.
"""

from bench_utils import run_once

from repro.experiments import figure6, headline

IMAGE_COUNT = 40
IMAGE_SIZE = 512


def test_figure6_input_sensitivity_and_speedups(benchmark, archive):
    result = run_once(
        benchmark,
        lambda: figure6.run(image_size=IMAGE_SIZE, image_count=IMAGE_COUNT),
    )
    rendered = figure6.render(result)
    archive("figure6", rendered)

    speedups = {name: r.speedup for name, r in result.per_app.items()}
    medians = {name: r.summary.median for name, r in result.per_app.items()}

    # Every application accelerates; Sobel5 accelerates the most, the 1x1
    # Inversion kernel the least (shape of the paper's bottom plot).
    assert all(s > 1.0 for s in speedups.values())
    assert speedups["sobel5"] == max(speedups.values())
    assert speedups["inversion"] == min(speedups.values())
    assert speedups["sobel5"] > 2.0

    # Error distributions: hotspot is near-lossless, median errors stay
    # moderate, outliers exist for the image applications.
    assert medians["hotspot"] < 0.01
    assert all(m < 0.15 for m in medians.values())
    for name in ("gaussian", "median", "sobel3"):
        assert result.per_app[name].summary.maximum > medians[name]


def test_headline_claim(benchmark, archive):
    result = run_once(
        benchmark,
        lambda: headline.run(image_size=IMAGE_SIZE, image_count=IMAGE_COUNT),
    )
    rendered = headline.render(result)
    archive("headline", rendered)
    # Paper: 1.6x-3x speedup, ~6% average error.  The simulator's band is
    # close but not identical; the shape checks are the claim here.
    assert result.min_speedup > 1.0
    assert result.max_speedup > 2.0
    assert result.mean_error < 0.10
