"""Benchmarks regenerating Table 1 and Figure 7.

* Table 1 lists the applications, their domains and error metrics.
* Figure 7 shows how the Median application's error depends on the image
  class (flat ~0.1%, natural ~5%, pattern ~20% in the paper).
"""

from bench_utils import run_once

from repro.data.images import ImageClass
from repro.experiments import figure7, table1


def test_table1_applications(benchmark, archive):
    result = run_once(benchmark, table1.run)
    rendered = table1.render(result)
    archive("table1", rendered)
    assert len(result.rows) == 6
    assert {row.application.lower() for row in result.rows} == {
        "gaussian", "median", "hotspot", "inversion", "sobel3", "sobel5",
    }


def test_figure7_image_class_sensitivity(benchmark, archive):
    result = run_once(benchmark, lambda: figure7.run(image_size=512))
    rendered = figure7.render(result)
    archive("figure7", rendered)
    errors = result.errors
    # The paper's ordering: flat << natural << pattern.
    assert errors[ImageClass.FLAT] < errors[ImageClass.NATURAL] < errors[ImageClass.PATTERN]
    assert errors[ImageClass.FLAT] < 0.01
    assert errors[ImageClass.PATTERN] > 0.05
