"""Benchmark: observability overhead guard.

Serves the same deterministic trace twice — once with the tracer installed
(every span call site live) and once with the null tracer (the default) —
and records the throughput ratio.  The acceptance bar is the PR's headline
overhead promise: the *fully traced* run must stay within 3% of the
untraced run, which bounds the disabled-tracer cost (one attribute check
per call site) even more tightly.

The result cache is disabled so every request does real kernel work: the
gate then measures span cost relative to genuine serving, not relative to
dictionary lookups.  Runs are interleaved best-of-N so a noisy neighbour
mid-run hits both modes equally.

The JSON record feeds ``check_regression.py`` like every other benchmark;
``required_speedup`` holds the floor at 0.97 regardless of the committed
baseline.
"""

from __future__ import annotations

import time

from bench_utils import run_once

from repro.data import generate_image
from repro.obs import trace as obs_trace
from repro.serve import PerforationServer, TraceSpec, generate_trace

SPEC = TraceSpec(requests=24, size=64, inputs_per_app=3, seed=7)

#: Traced throughput must be >= 97% of untraced throughput.
REQUIRED_RATIO = 0.97

ROUNDS = 7


def _calibration_inputs(size=64):
    from repro.data import hotspot_single

    inputs = {}
    for app in SPEC.apps:
        if app == "hotspot":
            inputs[app] = [hotspot_single(size=size, seed=77)]
        else:
            inputs[app] = [generate_image("natural", size=size, seed=77)]
    return inputs


def _server() -> PerforationServer:
    return PerforationServer(
        max_batch=4,
        calibration_inputs=_calibration_inputs(),
        cache_capacity=0,  # no result cache: every request runs kernels
    )


def _serve_once(server: PerforationServer) -> float:
    """Serve the whole trace on a warm server; returns wall seconds."""
    trace = generate_trace(SPEC)
    start = time.perf_counter()
    responses = server.run_trace(trace)
    seconds = time.perf_counter() - start
    assert len(responses) == SPEC.requests
    return seconds


def _measure() -> tuple[float, float, int]:
    """Interleaved best-of-N on paired warm servers.

    One warm server per mode; untimed priming runs absorb calibration
    sweeps and lowering-cache fills.  Serving is deterministic and tracing
    is out-of-band, so both servers walk the *same* controller-state
    trajectory: round k does identical work in both modes, and the only
    difference inside the timed region is the instrumentation.  Best-of-N
    on each side then converges to the machine's noise floor for one and
    the same workload sequence.
    """
    obs_trace.disable()
    server_off = _server()
    _serve_once(server_off)
    try:
        obs_trace.install(process="bench")
        server_on = _server()
        _serve_once(server_on)

        best_off = best_on = float("inf")
        spans = 0
        for _ in range(ROUNDS):
            obs_trace.disable()
            best_off = min(best_off, _serve_once(server_off))
            tracer = obs_trace.install(process="bench")
            best_on = min(best_on, _serve_once(server_on))
            spans = max(spans, len(tracer))
    finally:
        obs_trace.disable()
    return best_off, best_on, spans


def test_tracing_overhead_within_bound(benchmark, archive, archive_json):
    best_off, best_on, spans = run_once(benchmark, _measure)

    ratio = best_off / best_on  # >= 1.0 means tracing cost nothing
    rps_off = SPEC.requests / best_off
    rps_on = SPEC.requests / best_on
    lines = [
        "Observability overhead, serve trace "
        f"({SPEC.requests} requests, {SPEC.size}x{SPEC.size}, no result cache, "
        f"best of {ROUNDS} interleaved)",
        f"tracing off : {best_off * 1e3:9.1f} ms  ({rps_off:7.1f} req/s)",
        f"tracing on  : {best_on * 1e3:9.1f} ms  ({rps_on:7.1f} req/s, "
        f"{spans} spans)",
        f"throughput ratio (on/off): {ratio:6.3f} "
        f"(required: >= {REQUIRED_RATIO})",
    ]
    archive("obs_overhead", "\n".join(lines))
    archive_json(
        "obs_overhead",
        {
            "benchmark": "obs_overhead",
            "app": "mixed",
            "backend": "traced",
            "baseline_backend": "untraced",
            "requests": SPEC.requests,
            "size": SPEC.size,
            "spans": spans,
            "seconds": {"untraced": best_off, "traced": best_on},
            "speedup": ratio,
            "required_speedup": REQUIRED_RATIO,
        },
    )

    assert spans > 0, "traced runs must actually record spans"
    assert ratio >= REQUIRED_RATIO
