"""Hotspot thermal simulation with perforated inputs.

Reproduces the paper's Hotspot use case at application level: a multi-step
transient thermal simulation whose kernel inputs (temperature and power
grids) are perforated with row scheme 1.  The example reports the modelled
per-step speedup on the simulated FirePro W5100 and how the temperature
error accumulates (or rather, fails to accumulate — the fields are smooth)
over the simulation.

Run with:  python examples/thermal_simulation.py
"""

from __future__ import annotations


from repro.api import PerforationEngine
from repro.core import ROWS1_NN, ROWS2_NN, compute_error
from repro.data import generate_hotspot_input


def main() -> None:
    engine = PerforationEngine()
    session = engine.session(app="hotspot")
    app = session.app
    instance = generate_hotspot_input(size=512, seed=2018)

    print("Hotspot: 512x512 grid, Rodinia-style synthetic power map")
    print("-" * 72)

    for result in session.evaluate_many(instance, (ROWS1_NN, ROWS2_NN)):
        config = result.config
        print(
            f"  per-step {config.label:<10s} error {result.error * 100:7.4f}%   "
            f"speedup {result.speedup:4.2f}x   runtime {result.runtime_ms:7.3f} ms"
        )

    print()
    print("Error accumulation over a multi-step simulation (Rows1:NN):")
    steps_to_report = (1, 5, 10, 25)
    max_steps = max(steps_to_report)
    accurate = instance.temperature
    approximate = instance.temperature
    accurate_state = instance
    approximate_state = instance
    for step in range(1, max_steps + 1):
        accurate = app.reference(accurate_state)
        approximate = app.approximate(approximate_state, ROWS1_NN)
        accurate_state = type(instance)(
            size=instance.size, temperature=accurate, power=instance.power
        )
        approximate_state = type(instance)(
            size=instance.size, temperature=approximate, power=instance.power
        )
        if step in steps_to_report:
            drift = compute_error(accurate, approximate, app.error_metric)
            hottest_accurate = float(accurate.max())
            hottest_approx = float(approximate.max())
            print(
                f"  after {step:3d} steps: MRE {drift * 100:8.5f}%   "
                f"hottest cell {hottest_accurate:7.2f} K (accurate) vs "
                f"{hottest_approx:7.2f} K (perforated)"
            )

    peak_error = abs(float(accurate.max()) - float(approximate.max()))
    print()
    print(
        f"Peak-temperature deviation after {max_steps} steps: {peak_error:.4f} K "
        f"(ambient is 323.15 K) — well inside thermal-sensor noise, matching the\n"
        f"paper's observation that Hotspot tolerates input perforation almost for free."
    )


if __name__ == "__main__":
    main()
