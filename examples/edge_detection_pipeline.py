"""Edge-detection pipeline under an error budget.

The paper's introduction motivates perforation with image pipelines whose
stages tolerate small input errors.  This example builds the classic
noise-reduction + edge-detection pipeline (Gaussian blur followed by a
Sobel operator), then uses the quality-aware session API — one
:class:`repro.api.PerforationEngine` with one auto-tuned session per stage
— to pick perforation configurations that keep the end-to-end error within
a budget while maximising the modelled speedup on the simulated GPU.

Run with:  python examples/edge_detection_pipeline.py
"""

from __future__ import annotations

import numpy as np

from repro.api import PerforationEngine
from repro.core import compute_error
from repro.core.config import ACCURATE_CONFIG
from repro.data import generate_image
from repro.data.images import ImageClass


def run_pipeline(engine: PerforationEngine, image: np.ndarray, blur_config, edge_config) -> np.ndarray:
    """Blur then edge-detect, each stage under its own configuration."""
    blur = engine.resolve_app("gaussian")
    edges = engine.resolve_app("sobel3")
    blurred = (
        blur.reference(image)
        if blur_config.is_accurate
        else blur.approximate(image, blur_config)
    )
    return (
        edges.reference(blurred)
        if edge_config.is_accurate
        else edges.approximate(blurred, edge_config)
    )


def main() -> None:
    calibration = [
        generate_image(ImageClass.FLAT, size=512, seed=1),
        generate_image(ImageClass.NATURAL, size=512, seed=2),
    ]
    test_image = generate_image(ImageClass.NATURAL, size=512, seed=42)
    error_budget = 0.05

    engine = PerforationEngine(workers="auto")

    print("Calibrating per-stage configurations for a 5% end-to-end error budget...\n")
    # Errors compound through the pipeline (the edge detector amplifies any
    # error the blur stage leaves behind), so each stage gets a conservative
    # slice of the budget: a quarter for the blur, half for the edges.
    blur_session = engine.session(app="gaussian").autotune(
        error_budget=error_budget / 4, calibration_inputs=calibration
    )
    print(blur_session.report())
    print()
    edge_session = engine.session(app="sobel3").autotune(
        error_budget=error_budget / 2, calibration_inputs=calibration
    )
    print(edge_session.report())
    print()

    blur_config = blur_session.selected
    edge_config = edge_session.selected

    accurate = run_pipeline(engine, test_image, ACCURATE_CONFIG, ACCURATE_CONFIG)
    approximate = run_pipeline(engine, test_image, blur_config, edge_config)
    end_to_end_error = compute_error(
        accurate, approximate, edge_session.app.error_metric
    )

    blur_speedup = blur_session.evaluate(test_image, blur_config).speedup
    edge_speedup = edge_session.evaluate(test_image, edge_config).speedup
    image_size = blur_session.app.global_size(test_image)
    accurate_time = (
        engine.timing("gaussian", ACCURATE_CONFIG, image_size).total_time_s
        + engine.timing("sobel3", ACCURATE_CONFIG, image_size).total_time_s
    )
    approx_time = (
        engine.timing("gaussian", blur_config, image_size).total_time_s
        + engine.timing("sobel3", edge_config, image_size).total_time_s
    )

    print("Pipeline summary")
    print("-" * 72)
    print(f"  blur stage  : {blur_config.label:<14s} (stage speedup {blur_speedup:.2f}x)")
    print(f"  edge stage  : {edge_config.label:<14s} (stage speedup {edge_speedup:.2f}x)")
    print(f"  end-to-end modelled speedup : {accurate_time / approx_time:.2f}x")
    print(f"  end-to-end error            : {end_to_end_error * 100:.2f}% (budget {100 * error_budget:.0f}%)")
    print(f"  within budget               : {'yes' if end_to_end_error <= error_budget else 'no'}")
    print(f"  engine cache                : {engine.cache_stats.describe()}")


if __name__ == "__main__":
    main()
