"""Quick start: perforate a kernel and inspect error vs. speedup.

The example walks through the paper's core idea in three steps:

1. the 1D loop-perforation illustration of Section 4.1 (output perforation
   vs. input perforation with reconstruction);
2. evaluating the paper's configurations (Rows1/Rows2/Stencil1, NN/LI) on
   the Gaussian benchmark with the simulated FirePro W5100, through the
   :class:`repro.api.PerforationEngine` session API;
3. using the compiler path to emit the perforated OpenCL C kernel you would
   run on a real GPU.

Run with:  python examples/quickstart.py
"""

from __future__ import annotations

import math

import numpy as np

from repro.api import PerforationEngine
from repro.baselines import compare_strategies
from repro.core import ROWS1_NN, default_configurations
from repro.data import generate_image


def part_one_loop_perforation() -> None:
    print("=" * 72)
    print("1. Loop perforation on a 1D loop (Section 4.1 of the paper)")
    print("=" * 72)
    xs = np.linspace(0, 4 * math.pi, 300)
    signal = 10.0 + 3.0 * np.sin(xs) + 0.1 * xs

    def calc(value: float) -> float:
        return value * value + 1.0

    for name, outcome in compare_strategies(signal, calc, period=3).items():
        print(
            f"  {name:<22s} error {outcome.error * 100:6.2f}%   "
            f"loads saved {outcome.load_savings:5.1%}   "
            f"calc() calls saved {outcome.evaluation_savings:5.1%}"
        )
    print()


def part_two_kernel_perforation(engine: PerforationEngine) -> None:
    print("=" * 72)
    print("2. Kernel perforation of the Gaussian benchmark (simulated W5100)")
    print("=" * 72)
    session = engine.session(app="gaussian")
    image = generate_image("natural", size=512, seed=42)
    for result in session.evaluate_many(image, default_configurations(session.app.halo)):
        print(f"  {result.describe()}")
    print()


def part_three_compiler_output(engine: PerforationEngine) -> None:
    print("=" * 72)
    print("3. Generated OpenCL C for Gaussian with Rows1:NN (excerpt)")
    print("=" * 72)
    app = engine.resolve_app("gaussian")
    perforated = app.perforator().perforate(ROWS1_NN.with_work_group((16, 16)))
    lines = perforated.source.splitlines()
    for line in lines[:28]:
        print("  " + line)
    print("  ...")
    print()
    print("Transformation notes:")
    for note in perforated.notes:
        print(f"  - {note}")


def main() -> None:
    engine = PerforationEngine(device="firepro-w5100", workers="auto")
    part_one_loop_perforation()
    part_two_kernel_perforation(engine)
    part_three_compiler_output(engine)


if __name__ == "__main__":
    main()
