"""Auto-tuning: explore schemes, reconstructions and work-group sizes.

The paper's conclusion sketches a library that automatically applies and
tunes kernel perforation.  This example runs that search for the Median
benchmark: a joint sweep over the perforation schemes, reconstruction
techniques and the ten work-group shapes of Figure 9, followed by a Pareto
analysis and a pick for a 5% error budget.

Run with:  python examples/autotuning.py
"""

from __future__ import annotations

from repro.apps import MedianApp
from repro.core import best_work_group, full_sweep
from repro.core.config import ACCURATE_CONFIG, ROWS1_NN, STENCIL1_NN
from repro.core.pipeline import timing_for
from repro.data import generate_image


def main() -> None:
    app = MedianApp()
    image = generate_image("natural", size=512, seed=7)

    print("Joint sweep: schemes x reconstruction x work-group shapes (Median)")
    print("-" * 72)
    sweep = full_sweep(app, image)
    print(f"  evaluated configurations : {len(sweep.points)}")

    print("\nPareto-optimal configurations (speedup vs error):")
    for point in sweep.pareto_optimal():
        wx, wy = point.config.work_group
        print(
            f"  {point.label:<12s} wg {wx:>3d}x{wy:<3d}  "
            f"speedup {point.speedup:4.2f}x  error {point.error * 100:5.2f}%"
        )

    budget = 0.05
    choice = sweep.best_for_error_budget(budget)
    print(f"\nBest configuration for a {budget:.0%} error budget: {choice.describe()}")

    print("\nWork-group tuning (paper Figure 9 observation):")
    for label, config in (("Baseline", ACCURATE_CONFIG), ("Rows1:NN", ROWS1_NN), ("Stencil1:NN", STENCIL1_NN)):
        shape = best_work_group(app, image, config)
        runtime = timing_for(app, config.with_work_group(shape), image).total_time_s
        print(
            f"  best shape for {label:<12s}: {shape[0]:>3d}x{shape[1]:<3d} "
            f"(modelled runtime {runtime * 1e3:.3f} ms)"
        )
    print(
        "\nNote how the optimum differs between the accurate baseline and the\n"
        "approximate kernels — a system tuned for the baseline is not optimal\n"
        "for the perforated kernels (Section 6.3 of the paper)."
    )


if __name__ == "__main__":
    main()
