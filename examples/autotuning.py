"""Auto-tuning: explore schemes, reconstructions and work-group sizes.

The paper's conclusion sketches a library that automatically applies and
tunes kernel perforation.  This example runs that search for the Median
benchmark through the :class:`repro.api.PerforationEngine` session API: a
joint sweep over the perforation schemes, reconstruction techniques and
the ten work-group shapes of Figure 9 (evaluated on parallel workers with
a shared reference cache), followed by a Pareto analysis and a pick for a
5% error budget.

Run with:  python examples/autotuning.py
"""

from __future__ import annotations

from repro.api import PerforationEngine
from repro.core.config import ACCURATE_CONFIG, ROWS1_NN, STENCIL1_NN
from repro.data import generate_image


def main() -> None:
    engine = PerforationEngine(workers="auto")
    image = generate_image("natural", size=512, seed=7)
    session = engine.session(app="median").with_inputs(image)

    print("Joint sweep: schemes x reconstruction x work-group shapes (Median)")
    print("-" * 72)
    sweep = session.full_sweep()
    print(f"  evaluated configurations : {len(sweep.points)}")

    print("\nPareto-optimal configurations (speedup vs error):")
    for point in sweep.pareto_optimal():
        wx, wy = point.config.work_group
        print(
            f"  {point.label:<12s} wg {wx:>3d}x{wy:<3d}  "
            f"speedup {point.speedup:4.2f}x  error {point.error * 100:5.2f}%"
        )

    budget = 0.05
    choice = sweep.best_for_error_budget(budget)
    print(f"\nBest configuration for a {budget:.0%} error budget: {choice.describe()}")

    print("\nWork-group tuning (paper Figure 9 observation):")
    for label, config in (("Baseline", ACCURATE_CONFIG), ("Rows1:NN", ROWS1_NN), ("Stencil1:NN", STENCIL1_NN)):
        shape = session.best_work_group(config)
        runtime = engine.timing(
            session.app, config.with_work_group(shape), session.app.global_size(image)
        ).total_time_s
        print(
            f"  best shape for {label:<12s}: {shape[0]:>3d}x{shape[1]:<3d} "
            f"(modelled runtime {runtime * 1e3:.3f} ms)"
        )
    print(
        "\nNote how the optimum differs between the accurate baseline and the\n"
        "approximate kernels — a system tuned for the baseline is not optimal\n"
        "for the perforated kernels (Section 6.3 of the paper)."
    )


if __name__ == "__main__":
    main()
